(** One-call driver for the whole optimization pipeline.

    The layered API (simplify → analyze → derive → enumerate) is what
    the examples teach; this module is the convenience wrapper a
    downstream user actually calls:

    {[
      match Driver.Pipeline.optimize_sql "SELECT * FROM a JOIN b ON a.k = b.k" with
      | Ok r -> Format.printf "%a@." Plans.Plan.pp r.plan
      | Error msg -> prerr_endline msg
    ]} *)

type conflict_mode =
  | Tes_literal  (** the paper's CalcTES with the literal path gate *)
  | Tes_conservative
      (** CalcTES with the widened gate (reproduces Figure 8a) *)
  | Tes_generate_and_test
      (** SES edges plus a TES validity filter (Section 5.8 baseline) *)
  | Cdc  (** the SIGMOD 2013 rule-based successor *)

type result = {
  tree : Relalg.Optree.t;  (** after simplification *)
  graph : Hypergraph.Graph.t;
  plan : Plans.Plan.t;
  counters : Core.Counters.t;
  tier : Core.Adaptive.tier option;
      (** which adaptive rung produced the plan; [None] unless
          [algo = Adaptive] *)
  profile : Obs.Metrics.profile option;
      (** structured per-phase profile (spans, counter snapshot,
          tier attempts); [None] unless [?obs] was passed *)
}

val budget_error : string
(** The message every entry point returns when a non-adaptive
    algorithm exhausts its work budget. *)

val optimize_tree :
  ?obs:Obs.Span.ctx ->
  ?mode:conflict_mode ->
  ?algo:Core.Optimizer.algorithm ->
  ?model:Costing.Cost_model.t ->
  ?budget:int ->
  ?k:int ->
  ?jobs:int ->
  ?cards:(int -> float) ->
  ?sels:(int -> float) ->
  Relalg.Optree.t ->
  (result, string) Result.t
(** Simplify, run conflict analysis under [mode] (default
    {!Tes_literal}), derive the hypergraph, optimize with [algo]
    (default DPhyp).  [?obs] records one span per pipeline phase
    ([simplify], [conflict-analysis], [hypergraph-derive],
    [enumerate:<algo>] plus the per-tier / per-round spans inside it)
    and fills the result's [profile]; omitting it runs the completely
    un-instrumented path.  [?budget] and [?k] are forwarded to
    {!Core.Optimizer.run}; a non-adaptive algorithm that blows the
    budget yields [Error] rather than an exception.  [?jobs] (default
    1) enumerates on that many domains via {!Parallel.Par_dphyp} —
    the plan is byte-identical to the sequential one for every value;
    only DPhyp has a parallel decomposition, so [jobs > 1] with any
    other algorithm is an [Error].  [Error] carries a human-readable
    reason (invalid tree, no plan, algorithm/filter mismatch, budget
    exhausted). *)

val optimize_sql :
  ?obs:Obs.Span.ctx ->
  ?mode:conflict_mode ->
  ?algo:Core.Optimizer.algorithm ->
  ?model:Costing.Cost_model.t ->
  ?budget:int ->
  ?k:int ->
  ?jobs:int ->
  ?cards:(int -> float) ->
  ?sels:(int -> float) ->
  string ->
  (result, string) Result.t
(** Parse + bind (under a [parse] span) + {!optimize_tree}. *)

val optimize_graph :
  ?obs:Obs.Span.ctx ->
  ?algo:Core.Optimizer.algorithm ->
  ?model:Costing.Cost_model.t ->
  ?budget:int ->
  ?k:int ->
  ?jobs:int ->
  Hypergraph.Graph.t ->
  (result, string) Result.t
(** Plain-hypergraph entry point (inner joins / pre-built edges); the
    [tree] field of the result is the optimized plan re-materialized
    as an operator tree (under a [plan-emit] span when observed). *)

val run_batch :
  ?sink:Obs.Sink.t ->
  ?mode:conflict_mode ->
  ?algo:Core.Optimizer.algorithm ->
  ?model:Costing.Cost_model.t ->
  ?budget:int ->
  ?k:int ->
  jobs:int ->
  Relalg.Optree.t list ->
  (result, string) Result.t list
(** Inter-query parallelism: optimize a batch of operator trees
    concurrently on a pool of [jobs] domains (one task per query,
    each query running the ordinary sequential pipeline), returning
    per-query results in input order.  Queries share nothing but the
    optional [?sink]: each gets a private span context whose spans
    stream into it ({!Obs.Sink.emit} is thread-safe), and its profile
    lands in the query's own [result].  A task that raises something
    other than the pipeline's handled errors aborts the whole
    batch. *)

val verify_on_data :
  ?rows:int -> ?seed:int -> result -> (int, string) Result.t
(** Execute the chosen plan and the initial tree on a generated
    instance and compare bags; [Ok n] is the common tuple count. *)
