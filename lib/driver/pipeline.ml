module Ot = Relalg.Optree

type conflict_mode =
  | Tes_literal
  | Tes_conservative
  | Tes_generate_and_test
  | Cdc

type result = {
  tree : Ot.t;
  graph : Hypergraph.Graph.t;
  plan : Plans.Plan.t;
  counters : Core.Counters.t;
  tier : Core.Adaptive.tier option;
  profile : Obs.Metrics.profile option;
}

type plan_cache = Core.Optimizer.result Cache.Plan_cache.t

let make_cache ?shards ~capacity () = Cache.Plan_cache.create ?shards ~capacity ()

let cache_metrics c : Obs.Metrics.cache_stats =
  let s = Cache.Plan_cache.stats c in
  {
    Obs.Metrics.cache_hits = s.Cache.Plan_cache.hits;
    cache_misses = s.misses;
    cache_coalesced = s.coalesced;
    cache_evictions = s.evictions;
    cache_entries = s.entries;
    cache_capacity = s.capacity;
  }

let budget_error =
  "work budget exhausted before a plan was found (use the adaptive algorithm \
   for graceful degradation)"

(* Top-3 costliest memo subsets of a recorded run, with relation
   names resolved — the pre-rendered shape the profile and the flight
   recorder carry. *)
let prov_summary graph prov =
  let names i = (Hypergraph.Graph.relation graph i).Hypergraph.Graph.name in
  Inspect.Provenance.top_costly_labeled ~names prov 3

(* Intra-query parallelism: [jobs > 1] runs the enumeration itself on
   a domain pool — only DPhyp has a parallel decomposition (see
   Parallel.Par_dphyp); every other algorithm refuses rather than
   silently running sequentially. *)
let run_algo ?obs ?tel ?model ?filter ?budget ?k ?dpconv_objective ?inspect
    ~jobs algo graph =
  let go () =
    if jobs <= 1 then
      Core.Optimizer.run ?obs ?tel ?model ?filter ?budget ?k ?dpconv_objective
        algo graph
    else if algo <> Core.Optimizer.Dphyp then
      invalid_arg
        (Printf.sprintf "jobs > 1 requires the dphyp algorithm (got %s)"
           (Core.Optimizer.name algo))
    else
      Parallel.Pool.with_pool ~jobs (fun pool ->
          Parallel.Par_dphyp.run ?obs ?tel ?model ?filter ?budget ~pool graph)
  in
  match inspect with
  | None -> go ()
  | Some prov ->
      (* The recorder attaches through ambient (domain-wide) state;
         a parallel enumeration would race on it. *)
      if jobs > 1 then
        invalid_arg "provenance recording (--inspect) requires jobs = 1";
      Inspect.Provenance.with_recording prov go

(* The exact cache key: every input that can change the returned plan
   bytes.  The serialized graph carries node order, cardinalities,
   selectivities, operators, free sets and edge order (edge ids are
   file order); algorithm, cost model, budget and IDP block size are
   prepended.  [jobs] is deliberately absent — parallel enumeration
   is byte-identical to sequential for every jobs count, so one entry
   serves all of them (the differential test sweeps jobs to prove
   it). *)
let exact_key ?model ?budget ?k ?(dpconv_objective = Core.Dpconv.Cmax) algo
    graph =
  Printf.sprintf "algo=%s model=%s budget=%s k=%d\n%s"
    (* the objective changes dpconv's plan, so it is part of the
       algorithm component; other algorithms ignore it and keep their
       existing keys *)
    (match algo with
    | Core.Optimizer.Dpconv ->
        Core.Optimizer.name algo ^ ":"
        ^ Core.Dpconv.objective_name dpconv_objective
    | _ -> Core.Optimizer.name algo)
    (match model with
    | Some (m : Costing.Cost_model.t) -> m.name
    | None -> Costing.Cost_model.c_out.name)
    (match budget with Some b -> string_of_int b | None -> "unlimited")
    (Option.value k ~default:Core.Idp.default_k)
    (Hypergraph.Serialize.to_string graph)

(* Memoized enumeration.  A conflict-mode validity filter is a
   closure the key cannot capture, so those runs bypass the cache
   rather than risk serving a plan computed under a different filter.
   On a miss the optimizer runs inside the requester's [cache] span
   (so explain shows enumerate nested under cache); a hit or a
   coalesced wait returns the memoized result untouched — the cached
   plan is the exact value a fresh run would build, because the key
   is exact. *)
(* Returns the optimizer result plus the plan-cache outcome name, so
   the telemetry layer can label series and recorder entries without
   re-deriving it from span attributes. *)
let run_cached ?obs ?tel ?cache ?model ?filter ?budget ?k ?dpconv_objective
    ?inspect ~jobs algo graph =
  match cache with
  | None ->
      (run_algo ?obs ?tel ?model ?filter ?budget ?k ?dpconv_objective ?inspect
         ~jobs algo graph,
       None)
  | Some _ when filter <> None || inspect <> None ->
      (* a provenance-recorded request must actually enumerate — a
         cache hit has no decision trail to record *)
      (run_algo ?obs ?tel ?model ?filter ?budget ?k ?dpconv_objective ?inspect
         ~jobs algo graph,
       None)
  | Some c ->
      Obs.Span.with_opt obs "cache" (fun sp ->
          let key =
            Cache.Plan_cache.key
              ~fingerprint:(Cache.Fingerprint.of_graph graph)
              ~exact:(exact_key ?model ?budget ?k ?dpconv_objective algo graph)
          in
          let r, outcome =
            Cache.Plan_cache.find_or_compute c key (fun () ->
                run_algo ?obs ?tel ?model ?budget ?k ?dpconv_objective ~jobs
                  algo graph)
          in
          let name = Cache.Plan_cache.outcome_name outcome in
          Obs.Span.set_opt sp "cache" (Obs.Span.Str name);
          (r, Some name))

(* ---------- serving telemetry ---------- *)

let latency_help = "End-to-end optimize latency in seconds"

let phase_help = "Per-pipeline-phase latency in seconds"

(* Depth-0 span names, with the algorithm-specific enumerate span
   collapsed to one "enumerate" phase so the series stays
   low-cardinality. *)
let phase_name (s : Obs.Sink.span) =
  if String.length s.Obs.Sink.name >= 10
     && String.sub s.Obs.Sink.name 0 10 = "enumerate:"
  then "enumerate"
  else s.Obs.Sink.name

(* One always-on record per served request: the overall latency
   histogram (labeled by algorithm, plan-cache outcome and
   ok/error), the per-phase histograms harvested from the request's
   depth-0 spans, and a flight-recorder entry (which keeps the whole
   span tree when the request was slow). *)
let tel_record tel ~obs ~t0 ~(gc0 : Gc.stat) ~algo ~graph ?inspect outcome =
  let wall_s = Obs.Span.now () -. t0 in
  let gc1 = Gc.quick_stat () in
  let algo_name = Core.Optimizer.name algo in
  let ok, tier, pairs, cache_outcome =
    match outcome with
    | Ok ((r : Core.Optimizer.result), outc) ->
        ( r.Core.Optimizer.plan <> None,
          Option.map Core.Adaptive.tier_name r.Core.Optimizer.tier,
          r.Core.Optimizer.counters.Core.Counters.pairs_considered,
          outc )
    | Error () -> (false, None, 0, None)
  in
  Obs.Export.observe_s tel ~help:latency_help
    ~labels:
      [
        ("algo", algo_name);
        ("cache", Option.value cache_outcome ~default:"none");
        ("result", (if ok then "ok" else "error"));
      ]
    "joinopt_optimize_latency_seconds" wall_s;
  let spans = match obs with Some ctx -> Obs.Span.spans ctx | None -> [] in
  List.iter
    (fun (s : Obs.Sink.span) ->
      if s.Obs.Sink.depth = 0 then
        Obs.Export.observe_s tel ~help:phase_help
          ~labels:[ ("phase", phase_name s) ]
          "joinopt_phase_latency_seconds" s.Obs.Sink.dur_s)
    spans;
  let provenance =
    match inspect with
    | None -> []
    | Some prov -> prov_summary graph prov
  in
  Obs.Recorder.record (Obs.Export.recorder tel)
    ~fingerprint:(Cache.Fingerprint.to_hex (Cache.Fingerprint.of_graph graph))
    ~relations:(Hypergraph.Graph.num_nodes graph)
    ~algo:algo_name ?tier ?cache:cache_outcome ~pairs ~wall_s
    ~minor_words:(gc1.Gc.minor_words -. gc0.Gc.minor_words)
    ~major_words:(gc1.Gc.major_words -. gc0.Gc.major_words)
    ~provenance ~spans ()

let export_cache_stats tel cache =
  let s = Cache.Plan_cache.stats cache in
  let req outcome v =
    Obs.Export.set_counter tel
      ~help:"Plan-cache requests by outcome"
      ~labels:[ ("outcome", outcome) ]
      "joinopt_plan_cache_requests_total" v
  in
  req "hit" s.Cache.Plan_cache.hits;
  req "miss" s.Cache.Plan_cache.misses;
  req "coalesced" s.Cache.Plan_cache.coalesced;
  Obs.Export.set_counter tel ~help:"Plan-cache evictions"
    "joinopt_plan_cache_evictions_total" s.Cache.Plan_cache.evictions;
  Obs.Export.set_gauge tel ~help:"Plan-cache total capacity"
    "joinopt_plan_cache_capacity"
    (float_of_int s.Cache.Plan_cache.capacity);
  Array.iteri
    (fun i n ->
      Obs.Export.set_gauge tel
        ~help:"Plan-cache resident entries per shard"
        ~labels:[ ("shard", string_of_int i) ]
        "joinopt_plan_cache_entries" (float_of_int n))
    (Cache.Plan_cache.shard_entries cache)

let build_profile ?cache ?inspect ~graph obs r =
  Option.map
    (fun ctx ->
      let p = Core.Optimizer.profile ctx r in
      let p =
        match cache with
        | Some c -> Obs.Metrics.with_cache p (cache_metrics c)
        | None -> p
      in
      match inspect with
      | Some prov -> Obs.Metrics.with_provenance p (prov_summary graph prov)
      | None -> p)
    obs

(* Telemetry needs spans (per-phase histograms, slow-request span
   promotion) even when the caller asked for no profile: requests
   with [?tel] but no [?obs] get a private collector.  The result's
   [profile] is still keyed off the caller's own ctx. *)
let private_ctx obs tel =
  match (obs, tel) with
  | None, Some _ -> Some (Obs.Span.create ())
  | _ -> obs

let optimize_tree ?obs ?tel ?cache ?inspect ?(mode = Tes_literal)
    ?(algo = Core.Optimizer.Dphyp) ?model ?budget ?k ?dpconv_objective
    ?(jobs = 1) ?cards ?sels tree =
  let obs_user = obs in
  let obs = private_ctx obs tel in
  let t0 = Obs.Span.now () in
  let gc0 = Gc.quick_stat () in
  match Ot.validate tree with
  | Error e -> Error ("invalid operator tree: " ^ Ot.error_to_string e)
  | Ok () -> (
      let tree =
        Obs.Span.with_opt obs "simplify" (fun _ ->
            Conflicts.Simplify.simplify tree)
      in
      let analyzed f = Obs.Span.with_opt obs "conflict-analysis" (fun _ -> f ())
      and derived f =
        Obs.Span.with_opt obs "hypergraph-derive" (fun _ -> f ())
      in
      let graph, filter =
        match mode with
        | Tes_literal ->
            let a = analyzed (fun () -> Conflicts.Analysis.analyze tree) in
            (derived (fun () -> Conflicts.Derive.hypergraph ?cards ?sels a), None)
        | Tes_conservative ->
            let a =
              analyzed (fun () ->
                  Conflicts.Analysis.analyze ~conservative:true tree)
            in
            (derived (fun () -> Conflicts.Derive.hypergraph ?cards ?sels a), None)
        | Tes_generate_and_test ->
            let a =
              analyzed (fun () ->
                  Conflicts.Analysis.analyze ~conservative:true tree)
            in
            let g, f =
              derived (fun () -> Conflicts.Derive.ses_graph ?cards ?sels a)
            in
            (g, Some f)
        | Cdc ->
            let a = analyzed (fun () -> Conflicts.Cdc.analyze tree) in
            let g, f = derived (fun () -> Conflicts.Cdc.derive ?cards ?sels a) in
            (g, Some f)
      in
      match filter, Core.Optimizer.supports_filter algo with
      | Some _, false ->
          Error
            (Printf.sprintf
               "conflict mode needs a validity filter, which %s does not \
                support"
               (Core.Optimizer.name algo))
      | _ -> (
          let finish outcome =
            match tel with
            | Some tel ->
                tel_record tel ~obs ~t0 ~gc0 ~algo ~graph ?inspect outcome
            | None -> ()
          in
          match
            run_cached ?obs ?tel ?cache ?model ?filter ?budget ?k
              ?dpconv_objective ?inspect ~jobs algo graph
          with
          | ({ plan = Some plan; counters; tier; _ } as r), outc ->
              finish (Ok (r, outc));
              Ok
                {
                  tree;
                  graph;
                  plan;
                  counters;
                  tier;
                  profile = build_profile ?cache ?inspect ~graph obs_user r;
                }
          | ({ plan = None; _ } as r), outc ->
              finish (Ok (r, outc));
              Error "no valid plan found"
          | exception Invalid_argument m ->
              finish (Error ());
              Error m
          | exception Core.Counters.Budget_exhausted ->
              finish (Error ());
              Error budget_error))

let optimize_sql ?obs ?tel ?cache ?inspect ?mode ?algo ?model ?budget ?k
    ?dpconv_objective ?jobs ?cards ?sels sql =
  match Obs.Span.with_opt obs "parse" (fun _ -> Sqlfront.Binder.parse_and_bind sql) with
  | Error m -> Error m
  | Ok bound ->
      optimize_tree ?obs ?tel ?cache ?inspect ?mode ?algo ?model ?budget ?k
        ?dpconv_objective ?jobs ?cards ?sels bound.tree

let optimize_graph ?obs ?tel ?cache ?inspect ?(algo = Core.Optimizer.Dphyp)
    ?model ?budget ?k ?dpconv_objective ?(jobs = 1) graph =
  let obs_user = obs in
  let obs = private_ctx obs tel in
  let t0 = Obs.Span.now () in
  let gc0 = Gc.quick_stat () in
  let finish outcome =
    match tel with
    | Some tel -> tel_record tel ~obs ~t0 ~gc0 ~algo ~graph ?inspect outcome
    | None -> ()
  in
  match
    run_cached ?obs ?tel ?cache ?model ?budget ?k ?dpconv_objective ?inspect
      ~jobs algo graph
  with
  | ({ plan = Some plan; counters; tier; _ } as r), outc ->
      let tree =
        Obs.Span.with_opt obs "plan-emit" (fun _ ->
            Plans.Plan.to_optree graph plan)
      in
      finish (Ok (r, outc));
      Ok
        {
          tree;
          graph;
          plan;
          counters;
          tier;
          profile = build_profile ?cache ?inspect ~graph obs_user r;
        }
  | ({ plan = None; _ } as r), outc ->
      finish (Ok (r, outc));
      Error "no valid plan found"
  | exception Invalid_argument m ->
      finish (Error ());
      Error m
  | exception Core.Counters.Budget_exhausted ->
      finish (Error ());
      Error budget_error

(* Inter-query parallelism: one pool task per query, each running the
   full sequential pipeline on whichever domain picks it up.  Every
   query derives its own graph and counters, so tasks share nothing
   but the optional sink — and Obs.Sink.emit is serialized by a
   process-wide mutex, so all per-query span contexts may stream into
   one [?sink]. *)
let run_batch ?sink ?pool ?tel ?cache ?mode ?algo ?model ?budget ?k ~jobs
    trees =
  let trees = Array.of_list trees in
  let out = Array.make (Array.length trees) (Error "query was not run") in
  let go pool =
    Parallel.Pool.run_fun pool (Array.length trees) (fun i _wid ->
        let obs = Option.map (fun sink -> Obs.Span.create ~sink ()) sink in
        out.(i) <-
          optimize_tree ?obs ?tel ?cache ?mode ?algo ?model ?budget ?k
            trees.(i))
  in
  (match pool with
  | Some pool -> go pool
  | None -> Parallel.Pool.with_pool ~jobs go);
  Array.to_list out

let verify_on_data ?(rows = 8) ?(seed = 42) r =
  let inst = Executor.Instance.for_tree ~rows ~seed r.tree in
  let expected = Executor.Exec.eval inst r.tree in
  let got = Executor.Exec.eval inst (Plans.Plan.to_optree r.graph r.plan) in
  let universe = Executor.Exec.output_tables r.tree in
  match Executor.Bag.diff_summary ~universe expected got with
  | None -> Ok (List.length expected)
  | Some m -> Error m
