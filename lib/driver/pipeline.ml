module Ot = Relalg.Optree

type conflict_mode =
  | Tes_literal
  | Tes_conservative
  | Tes_generate_and_test
  | Cdc

type result = {
  tree : Ot.t;
  graph : Hypergraph.Graph.t;
  plan : Plans.Plan.t;
  counters : Core.Counters.t;
  tier : Core.Adaptive.tier option;
  profile : Obs.Metrics.profile option;
}

let budget_error =
  "work budget exhausted before a plan was found (use the adaptive algorithm \
   for graceful degradation)"

(* Intra-query parallelism: [jobs > 1] runs the enumeration itself on
   a domain pool — only DPhyp has a parallel decomposition (see
   Parallel.Par_dphyp); every other algorithm refuses rather than
   silently running sequentially. *)
let run_algo ?obs ?model ?filter ?budget ?k ~jobs algo graph =
  if jobs <= 1 then Core.Optimizer.run ?obs ?model ?filter ?budget ?k algo graph
  else if algo <> Core.Optimizer.Dphyp then
    invalid_arg
      (Printf.sprintf "jobs > 1 requires the dphyp algorithm (got %s)"
         (Core.Optimizer.name algo))
  else
    Parallel.Pool.with_pool ~jobs (fun pool ->
        Parallel.Par_dphyp.run ?obs ?model ?filter ?budget ~pool graph)

let optimize_tree ?obs ?(mode = Tes_literal) ?(algo = Core.Optimizer.Dphyp)
    ?model ?budget ?k ?(jobs = 1) ?cards ?sels tree =
  match Ot.validate tree with
  | Error e -> Error ("invalid operator tree: " ^ Ot.error_to_string e)
  | Ok () -> (
      let tree =
        Obs.Span.with_opt obs "simplify" (fun _ ->
            Conflicts.Simplify.simplify tree)
      in
      let analyzed f = Obs.Span.with_opt obs "conflict-analysis" (fun _ -> f ())
      and derived f =
        Obs.Span.with_opt obs "hypergraph-derive" (fun _ -> f ())
      in
      let graph, filter =
        match mode with
        | Tes_literal ->
            let a = analyzed (fun () -> Conflicts.Analysis.analyze tree) in
            (derived (fun () -> Conflicts.Derive.hypergraph ?cards ?sels a), None)
        | Tes_conservative ->
            let a =
              analyzed (fun () ->
                  Conflicts.Analysis.analyze ~conservative:true tree)
            in
            (derived (fun () -> Conflicts.Derive.hypergraph ?cards ?sels a), None)
        | Tes_generate_and_test ->
            let a =
              analyzed (fun () ->
                  Conflicts.Analysis.analyze ~conservative:true tree)
            in
            let g, f =
              derived (fun () -> Conflicts.Derive.ses_graph ?cards ?sels a)
            in
            (g, Some f)
        | Cdc ->
            let a = analyzed (fun () -> Conflicts.Cdc.analyze tree) in
            let g, f = derived (fun () -> Conflicts.Cdc.derive ?cards ?sels a) in
            (g, Some f)
      in
      match filter, Core.Optimizer.supports_filter algo with
      | Some _, false ->
          Error
            (Printf.sprintf
               "conflict mode needs a validity filter, which %s does not \
                support"
               (Core.Optimizer.name algo))
      | _ -> (
          match run_algo ?obs ?model ?filter ?budget ?k ~jobs algo graph with
          | { plan = Some plan; counters; tier; _ } as r ->
              Ok
                {
                  tree;
                  graph;
                  plan;
                  counters;
                  tier;
                  profile =
                    Option.map (fun ctx -> Core.Optimizer.profile ctx r) obs;
                }
          | { plan = None; _ } -> Error "no valid plan found"
          | exception Invalid_argument m -> Error m
          | exception Core.Counters.Budget_exhausted -> Error budget_error))

let optimize_sql ?obs ?mode ?algo ?model ?budget ?k ?jobs ?cards ?sels sql =
  match Obs.Span.with_opt obs "parse" (fun _ -> Sqlfront.Binder.parse_and_bind sql) with
  | Error m -> Error m
  | Ok bound ->
      optimize_tree ?obs ?mode ?algo ?model ?budget ?k ?jobs ?cards ?sels
        bound.tree

let optimize_graph ?obs ?(algo = Core.Optimizer.Dphyp) ?model ?budget ?k
    ?(jobs = 1) graph =
  match run_algo ?obs ?model ?budget ?k ~jobs algo graph with
  | { plan = Some plan; counters; tier; _ } as r ->
      let tree =
        Obs.Span.with_opt obs "plan-emit" (fun _ ->
            Plans.Plan.to_optree graph plan)
      in
      Ok
        {
          tree;
          graph;
          plan;
          counters;
          tier;
          profile = Option.map (fun ctx -> Core.Optimizer.profile ctx r) obs;
        }
  | { plan = None; _ } -> Error "no valid plan found"
  | exception Invalid_argument m -> Error m
  | exception Core.Counters.Budget_exhausted -> Error budget_error

(* Inter-query parallelism: one pool task per query, each running the
   full sequential pipeline on whichever domain picks it up.  Every
   query derives its own graph and counters, so tasks share nothing
   but the optional sink — and Obs.Sink.emit is serialized by a
   process-wide mutex, so all per-query span contexts may stream into
   one [?sink]. *)
let run_batch ?sink ?mode ?algo ?model ?budget ?k ~jobs trees =
  let trees = Array.of_list trees in
  let out = Array.make (Array.length trees) (Error "query was not run") in
  Parallel.Pool.with_pool ~jobs (fun pool ->
      Parallel.Pool.run_fun pool (Array.length trees) (fun i _wid ->
          let obs = Option.map (fun sink -> Obs.Span.create ~sink ()) sink in
          out.(i) <- optimize_tree ?obs ?mode ?algo ?model ?budget ?k trees.(i)));
  Array.to_list out

let verify_on_data ?(rows = 8) ?(seed = 42) r =
  let inst = Executor.Instance.for_tree ~rows ~seed r.tree in
  let expected = Executor.Exec.eval inst r.tree in
  let got = Executor.Exec.eval inst (Plans.Plan.to_optree r.graph r.plan) in
  let universe = Executor.Exec.output_tables r.tree in
  match Executor.Bag.diff_summary ~universe expected got with
  | None -> Ok (List.length expected)
  | Some m -> Error m
