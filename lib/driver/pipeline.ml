module Ot = Relalg.Optree

type conflict_mode =
  | Tes_literal
  | Tes_conservative
  | Tes_generate_and_test
  | Cdc

type result = {
  tree : Ot.t;
  graph : Hypergraph.Graph.t;
  plan : Plans.Plan.t;
  counters : Core.Counters.t;
  tier : Core.Adaptive.tier option;
}

let budget_error =
  "work budget exhausted before a plan was found (use the adaptive algorithm \
   for graceful degradation)"

let optimize_tree ?(mode = Tes_literal) ?(algo = Core.Optimizer.Dphyp) ?model
    ?budget ?k ?cards ?sels tree =
  match Ot.validate tree with
  | Error e -> Error ("invalid operator tree: " ^ Ot.error_to_string e)
  | Ok () -> (
      let tree = Conflicts.Simplify.simplify tree in
      let graph, filter =
        match mode with
        | Tes_literal ->
            let a = Conflicts.Analysis.analyze tree in
            (Conflicts.Derive.hypergraph ?cards ?sels a, None)
        | Tes_conservative ->
            let a = Conflicts.Analysis.analyze ~conservative:true tree in
            (Conflicts.Derive.hypergraph ?cards ?sels a, None)
        | Tes_generate_and_test ->
            let a = Conflicts.Analysis.analyze ~conservative:true tree in
            let g, f = Conflicts.Derive.ses_graph ?cards ?sels a in
            (g, Some f)
        | Cdc ->
            let a = Conflicts.Cdc.analyze tree in
            let g, f = Conflicts.Cdc.derive ?cards ?sels a in
            (g, Some f)
      in
      match filter, Core.Optimizer.supports_filter algo with
      | Some _, false ->
          Error
            (Printf.sprintf
               "conflict mode needs a validity filter, which %s does not \
                support"
               (Core.Optimizer.name algo))
      | _ -> (
          match Core.Optimizer.run ?model ?filter ?budget ?k algo graph with
          | { plan = Some plan; counters; tier; _ } ->
              Ok { tree; graph; plan; counters; tier }
          | { plan = None; _ } -> Error "no valid plan found"
          | exception Invalid_argument m -> Error m
          | exception Core.Counters.Budget_exhausted -> Error budget_error))

let optimize_sql ?mode ?algo ?model ?budget ?k ?cards ?sels sql =
  match Sqlfront.Binder.parse_and_bind sql with
  | Error m -> Error m
  | Ok bound -> optimize_tree ?mode ?algo ?model ?budget ?k ?cards ?sels bound.tree

let optimize_graph ?(algo = Core.Optimizer.Dphyp) ?model ?budget ?k graph =
  match Core.Optimizer.run ?model ?budget ?k algo graph with
  | { plan = Some plan; counters; tier; _ } ->
      Ok { tree = Plans.Plan.to_optree graph plan; graph; plan; counters; tier }
  | { plan = None; _ } -> Error "no valid plan found"
  | exception Invalid_argument m -> Error m
  | exception Core.Counters.Budget_exhausted -> Error budget_error

let verify_on_data ?(rows = 8) ?(seed = 42) r =
  let inst = Executor.Instance.for_tree ~rows ~seed r.tree in
  let expected = Executor.Exec.eval inst r.tree in
  let got = Executor.Exec.eval inst (Plans.Plan.to_optree r.graph r.plan) in
  let universe = Executor.Exec.output_tables r.tree in
  match Executor.Bag.diff_summary ~universe expected got with
  | None -> Ok (List.length expected)
  | Some m -> Error m
