(* EXPLAIN ANALYZE: optimize, execute, and hold every operator's
   estimate against what actually happened.

   The optimizer half of the pipeline was instrumented in the obs
   work (spans, counters, profiles); this module closes the loop on
   the executor side.  One call optimizes a query, builds a calibrated
   instance, executes the chosen plan through the single-pass stats
   collector of [Executor.Exec.eval_stats], and joins the optimizer's
   per-node cardinality estimates ([Plans.Plan.estimates]) against the
   measured row counts by relation set.  The result is a per-operator
   table (estimated rows, actual rows, Q-error, wall clock, predicate
   evaluations), aggregate Q-error figures, and the measured
   plan-quality delta against the exact (DPhyp) plan — the ground
   truth behind both the C_out objective and the adaptive ladder's
   quality/time tradeoff. *)

module Ns = Nodeset.Node_set
module G = Hypergraph.Graph
module Opt = Core.Optimizer

type op_row = {
  depth : int;  (* nesting depth in the plan tree, root = 0 *)
  label : string;  (* operator symbol, or "scan <name>" *)
  tables : Ns.t;
  est_card : float;
  actual_rows : int;
  q_error : float option;  (* None when the operator produced 0 rows *)
  wall_ms : float;  (* inclusive, children included *)
  pred_evals : int;
  invocations : int;
  is_join : bool;
}

type report = {
  plan : Plans.Plan.t;
  source : string;  (* Optimizer.plan_source: algo / adaptive tier *)
  rows : op_row list;  (* preorder: parents before children *)
  result_rows : int;
  mismatch : string option;  (* None = plan result equals original *)
  max_q : float option;
  median_q : float option;
  est_cout : float;  (* sum of estimated join cardinalities *)
  measured_cout : float;  (* sum of actual join output rows *)
  original_cout : float;  (* measured C_out of the initial tree *)
  exact_cout : float option;  (* measured C_out of the exact plan *)
  quality_delta : float option;  (* measured / exact *)
  exec_ms : float;  (* wall clock of executing the chosen plan *)
  profile : Obs.Metrics.profile option;
}

let median = function
  | [] -> None
  | qs ->
      let arr = Array.of_list (List.sort compare qs) in
      let n = Array.length arr in
      Some
        (if n mod 2 = 1 then arr.(n / 2)
         else (arr.((n / 2) - 1) +. arr.(n / 2)) /. 2.0)

(* Join the plan's estimate annotations against the executed stats by
   relation set (both sides key on T(subtree), unique within a tree). *)
let build_rows g plan stats =
  let by_set = Hashtbl.create 32 in
  List.iter
    (fun (s : Executor.Exec.op_stat) ->
      Hashtbl.replace by_set (Ns.to_int s.tables) s)
    stats;
  let out = ref [] in
  let rec walk depth (p : Plans.Plan.t) =
    let label, is_join =
      match p.tree with
      | Plans.Plan.Scan i -> ("scan " ^ (G.relation g i).G.name, false)
      | Plans.Plan.Compound _ ->
          invalid_arg "Analyze: plan contains an unflattened compound leaf"
      | Plans.Plan.Join j -> (Relalg.Operator.symbol j.op, true)
    in
    let stat = Hashtbl.find_opt by_set (Ns.to_int p.set) in
    let actual, wall, preds, inv =
      match stat with
      | Some s -> (s.rows_out, s.wall_s *. 1e3, s.pred_evals, s.invocations)
      | None -> (0, 0.0, 0, 0)
    in
    out :=
      {
        depth;
        label;
        tables = p.set;
        est_card = p.card;
        actual_rows = actual;
        q_error =
          Costing.Cardinality.q_error ~est:p.card
            ~actual:(float_of_int actual);
        wall_ms = wall;
        pred_evals = preds;
        invocations = inv;
        is_join;
      }
      :: !out;
    match p.tree with
    | Plans.Plan.Scan _ | Plans.Plan.Compound _ -> ()
    | Plans.Plan.Join j ->
        walk (depth + 1) j.left;
        walk (depth + 1) j.right
  in
  walk 0 plan;
  List.rev !out

let analyze_tree ?obs ?(algo = Opt.Dphyp) ?model ?budget ?k
    ?(conservative = false) ?(rows = 8) ?(domain = 4) ?(seed = 42) ?sample
    tree =
  match Relalg.Optree.validate tree with
  | Error e -> Error ("invalid operator tree: " ^ Relalg.Optree.error_to_string e)
  | Ok () -> (
      let tree =
        Obs.Span.with_opt obs "simplify" (fun _ ->
            Conflicts.Simplify.simplify tree)
      in
      let analysis =
        Obs.Span.with_opt obs "conflict-analysis" (fun _ ->
            Conflicts.Analysis.analyze ~conservative tree)
      in
      let g0 =
        Obs.Span.with_opt obs "hypergraph-derive" (fun _ ->
            Conflicts.Derive.hypergraph analysis)
      in
      let inst = Executor.Instance.for_tree ~rows ~domain ~seed tree in
      let g =
        Obs.Span.with_opt obs "calibrate" (fun _ ->
            Executor.Estimate.calibrate ?sample ~seed inst g0)
      in
      match Opt.run ?obs ?model ?budget ?k algo g with
      | { Opt.plan = None; _ } -> Error "no valid plan found"
      | exception Invalid_argument m -> Error m
      | exception Core.Counters.Budget_exhausted ->
          Error Pipeline.budget_error
      | { Opt.plan = Some plan; _ } as r ->
          let optimized =
            Obs.Span.with_opt obs "plan-emit" (fun _ ->
                Plans.Plan.to_optree g plan)
          in
          let result, stats = Executor.Exec.eval_stats ?obs inst optimized in
          let op_rows = build_rows g plan stats in
          let joins = List.filter (fun row -> row.is_join) op_rows in
          let qs = List.filter_map (fun row -> row.q_error) joins in
          let est_cout =
            List.fold_left (fun s row -> s +. row.est_card) 0.0 joins
          in
          let measured_cout =
            List.fold_left
              (fun s row -> s +. float_of_int row.actual_rows)
              0.0 joins
          in
          let mismatch, original_cout =
            Obs.Span.with_opt obs "verify" (fun _ ->
                let expected, orig_stats =
                  Executor.Exec.eval_stats inst tree
                in
                let universe = Executor.Exec.output_tables tree in
                ( Executor.Bag.diff_summary ~universe expected result,
                  List.fold_left
                    (fun s (st : Executor.Exec.op_stat) ->
                      if st.op = None then s
                      else s +. float_of_int st.rows_out)
                    0.0 orig_stats ))
          in
          (* Exact reference: when the plan came from a heuristic tier,
             measure the C_out the exact plan would have achieved. *)
          let is_exact =
            Opt.exact algo || r.Opt.tier = Some Core.Adaptive.Exact
          in
          let exact_cout =
            if is_exact then Some measured_cout
            else
              Obs.Span.with_opt obs "exact-reference" (fun _ ->
                  match (Opt.run ?model Opt.Dphyp g).Opt.plan with
                  | Some ep ->
                      Some
                        (Executor.Stats.actual_cout inst
                           (Plans.Plan.to_optree g ep))
                  | None -> None)
          in
          let quality_delta =
            match exact_cout with
            | Some e when e > 0.0 -> Some (measured_cout /. e)
            | _ -> None
          in
          let source = Opt.plan_source algo r in
          let quality =
            {
              Obs.Metrics.q_tier = source;
              est_cout;
              measured_cout;
              exact_cout;
              delta = quality_delta;
            }
          in
          let exec_ms =
            match op_rows with row :: _ -> row.wall_ms | [] -> 0.0
          in
          Ok
            {
              plan;
              source;
              rows = op_rows;
              result_rows = List.length result;
              mismatch;
              max_q =
                (match qs with
                | [] -> None
                | qs -> Some (List.fold_left Float.max neg_infinity qs));
              median_q = median qs;
              est_cout;
              measured_cout;
              original_cout;
              exact_cout;
              quality_delta;
              exec_ms;
              profile =
                Option.map
                  (fun ctx ->
                    Obs.Metrics.with_quality (Opt.profile ctx r) quality)
                  obs;
            })

let analyze_sql ?obs ?algo ?model ?budget ?k ?conservative ?rows ?domain
    ?seed ?sample sql =
  match
    Obs.Span.with_opt obs "parse" (fun _ -> Sqlfront.Binder.parse_and_bind sql)
  with
  | Error m -> Error m
  | Ok bound ->
      analyze_tree ?obs ?algo ?model ?budget ?k ?conservative ?rows ?domain
        ?seed ?sample bound.tree

(* ---------- rendering ---------- *)

let fmt_q = function None -> "-" | Some q -> Printf.sprintf "%.2f" q

let fmt_ms ~stable ms = if stable then "-" else Printf.sprintf "%.3f" ms

let pp ?(stable = false) ppf r =
  Format.fprintf ppf "plan: %a   (source: %s)@." Plans.Plan.pp r.plan r.source;
  Format.fprintf ppf "@.%-34s %10s %10s %8s %10s %10s@." "operator" "est rows"
    "actual" "q-error" "ms" "pred-evals";
  Format.fprintf ppf "%s@." (String.make 87 '-');
  List.iter
    (fun row ->
      let label =
        String.make (2 * row.depth) ' '
        ^ row.label ^ " " ^ Ns.to_string row.tables
      in
      Format.fprintf ppf "%-34s %10.1f %10d %8s %10s %10s@." label
        row.est_card row.actual_rows (fmt_q row.q_error)
        (fmt_ms ~stable row.wall_ms)
        (if row.is_join then string_of_int row.pred_evals else "-"))
    r.rows;
  let joins = List.filter (fun row -> row.is_join) r.rows in
  Format.fprintf ppf "@.q-error over %d joins: max %s, median %s@."
    (List.length joins) (fmt_q r.max_q) (fmt_q r.median_q);
  let offenders =
    List.filter (fun row -> row.q_error <> None) joins
    |> List.sort (fun a b -> compare b.q_error a.q_error)
    |> List.filteri (fun i _ -> i < 3)
  in
  (match offenders with
  | [] -> ()
  | off ->
      Format.fprintf ppf "top offenders: %s@."
        (String.concat "; "
           (List.map
              (fun row ->
                Printf.sprintf "%s %s q=%s" row.label
                  (Ns.to_string row.tables) (fmt_q row.q_error))
              off)));
  Format.fprintf ppf
    "C_out: est %.4g, measured %.4g, original order %.4g%s@." r.est_cout
    r.measured_cout r.original_cout
    (match r.exact_cout, r.quality_delta with
    | Some e, Some d ->
        Printf.sprintf ", exact plan %.4g (delta %.2fx)" e d
    | _ -> "");
  (match r.mismatch with
  | None ->
      Format.fprintf ppf
        "verified: plan result equals original-order result (%d tuples)@."
        r.result_rows
  | Some m -> Format.fprintf ppf "MISMATCH: %s@." m);
  Format.fprintf ppf "execution: %s ms@." (fmt_ms ~stable r.exec_ms)

(* ---------- obs_analyze/v1 ---------- *)

let opt_float_json = function
  | None -> "null"
  | Some f -> Printf.sprintf "%.4f" f

let row_json row =
  Printf.sprintf
    "    {\"op\": %S, \"depth\": %d, \"tables\": [%s], \"est_card\": %.4f, \
     \"actual_rows\": %d, \"q_error\": %s, \"ms\": %.4f, \"pred_evals\": %d, \
     \"invocations\": %d}"
    row.label row.depth
    (String.concat ", " (List.map string_of_int (Ns.to_list row.tables)))
    row.est_card row.actual_rows (opt_float_json row.q_error) row.wall_ms
    row.pred_evals row.invocations

let to_json ?(query = "") r =
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"obs_analyze/v1\",\n";
  Printf.bprintf b "  \"query\": %S,\n" query;
  Printf.bprintf b "  \"source\": %S,\n" r.source;
  Printf.bprintf b "  \"plan\": %S,\n" (Plans.Plan.to_string r.plan);
  Buffer.add_string b "  \"operators\": [\n";
  Buffer.add_string b (String.concat ",\n" (List.map row_json r.rows));
  Buffer.add_string b "\n  ],\n";
  Buffer.add_string b "  \"summary\": {\n";
  Printf.bprintf b "    \"joins\": %d,\n"
    (List.length (List.filter (fun row -> row.is_join) r.rows));
  Printf.bprintf b "    \"max_q_error\": %s,\n" (opt_float_json r.max_q);
  Printf.bprintf b "    \"median_q_error\": %s,\n" (opt_float_json r.median_q);
  Printf.bprintf b "    \"est_cout\": %.4f,\n" r.est_cout;
  Printf.bprintf b "    \"measured_cout\": %.4f,\n" r.measured_cout;
  Printf.bprintf b "    \"original_cout\": %.4f,\n" r.original_cout;
  Printf.bprintf b "    \"exact_cout\": %s,\n" (opt_float_json r.exact_cout);
  Printf.bprintf b "    \"quality_delta\": %s,\n"
    (opt_float_json r.quality_delta);
  Printf.bprintf b "    \"result_rows\": %d,\n" r.result_rows;
  Printf.bprintf b "    \"exec_ms\": %.4f\n" r.exec_ms;
  Buffer.add_string b "  },\n";
  Printf.bprintf b "  \"verified\": %b\n" (r.mismatch = None);
  Buffer.add_string b "}\n";
  Buffer.contents b
