(** EXPLAIN ANALYZE: per-operator runtime statistics and Q-error.

    Optimize a query, execute the chosen plan on a calibrated random
    instance through the single-pass stats collector
    ({!Executor.Exec.eval_stats}), and join every operator's estimated
    cardinality ({!Plans.Plan.estimates}) against its measured row
    count.  The report carries the per-operator est/actual/Q-error/
    time table behind [joinopt analyze], aggregate Q-error figures,
    and the measured plan-quality delta against the exact (DPhyp)
    plan — recorded into the run's {!Obs.Metrics.profile} when
    observability is on. *)

type op_row = {
  depth : int;  (** nesting depth in the plan tree, root = 0 *)
  label : string;  (** operator symbol, or ["scan <name>"] *)
  tables : Nodeset.Node_set.t;  (** relations covered by the subtree *)
  est_card : float;  (** optimizer-estimated output cardinality *)
  actual_rows : int;  (** measured output rows (single execution) *)
  q_error : float option;
      (** [max(est/actual, actual/est)]; [None] when the operator
          produced no rows (NULL-safe, {!Costing.Cardinality.q_error}) *)
  wall_ms : float;  (** inclusive wall clock, children included *)
  pred_evals : int;  (** predicate evaluations at this operator *)
  invocations : int;  (** > 1 only under dependent joins *)
  is_join : bool;  (** false for scans *)
}

type report = {
  plan : Plans.Plan.t;
  source : string;
      (** plan provenance ({!Core.Optimizer.plan_source}): the
          algorithm, or the adaptive tier that answered *)
  rows : op_row list;  (** preorder: parents before children *)
  result_rows : int;
  mismatch : string option;
      (** [None] when the plan's result bag equals the initial tree's;
          otherwise the {!Executor.Bag.diff_summary} account *)
  max_q : float option;  (** worst join Q-error *)
  median_q : float option;  (** median join Q-error *)
  est_cout : float;  (** sum of estimated join cardinalities *)
  measured_cout : float;  (** sum of measured join output rows *)
  original_cout : float;  (** measured C_out of the initial tree *)
  exact_cout : float option;
      (** measured C_out of the exact (DPhyp) plan; equals
          [measured_cout] when the plan already came from an exact
          algorithm/tier *)
  quality_delta : float option;  (** [measured_cout / exact_cout] *)
  exec_ms : float;  (** wall clock of executing the chosen plan *)
  profile : Obs.Metrics.profile option;
      (** per-phase profile with the measured-quality record attached;
          [None] unless [?obs] was passed *)
}

val analyze_tree :
  ?obs:Obs.Span.ctx ->
  ?algo:Core.Optimizer.algorithm ->
  ?model:Costing.Cost_model.t ->
  ?budget:int ->
  ?k:int ->
  ?conservative:bool ->
  ?rows:int ->
  ?domain:int ->
  ?seed:int ->
  ?sample:int ->
  Relalg.Optree.t ->
  (report, string) result
(** Simplify, analyze conflicts, derive the hypergraph, build a
    deterministic random instance ([rows] per table, default 8;
    values in [0, domain), default 4; generator [seed], default 42),
    calibrate the catalog on it ({!Executor.Estimate.calibrate} with
    the same [seed], so the whole report is reproducible), optimize
    with [algo], execute, and measure.  [?obs] additionally records
    [calibrate], [execute], [verify] and (for heuristic plans)
    [exact-reference] spans on top of the optimizer's own. *)

val analyze_sql :
  ?obs:Obs.Span.ctx ->
  ?algo:Core.Optimizer.algorithm ->
  ?model:Costing.Cost_model.t ->
  ?budget:int ->
  ?k:int ->
  ?conservative:bool ->
  ?rows:int ->
  ?domain:int ->
  ?seed:int ->
  ?sample:int ->
  string ->
  (report, string) result
(** Parse + bind (under a [parse] span) + {!analyze_tree}. *)

val pp : ?stable:bool -> Format.formatter -> report -> unit
(** The EXPLAIN ANALYZE table: one row per operator (indented by plan
    depth) with estimated rows, actual rows, Q-error, inclusive
    milliseconds and predicate evaluations, followed by the Q-error
    aggregates, top offenders, the C_out comparison (estimated,
    measured, original order, exact plan) and the verification
    verdict.  [~stable:true] replaces wall-clock columns with ["-"]
    so output is byte-deterministic (golden tests). *)

val to_json : ?query:string -> report -> string
(** The [obs_analyze/v1] document: schema header, plan provenance,
    one object per operator ([op], [depth], [tables], [est_card],
    [actual_rows], [q_error] (nullable), [ms], [pred_evals],
    [invocations]), a [summary] block (join count, max/median
    Q-error, estimated/measured/original/exact C_out, quality delta,
    result rows, execution ms) and the verification flag. *)
