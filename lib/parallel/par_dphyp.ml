module Ns = Nodeset.Node_set
module G = Hypergraph.Graph
module He = Hypergraph.Hyperedge
module Plan = Plans.Plan
module Dp = Plans.Dp_table

(* Subsets fit a flat 2^n table up to this size (same bound as
   Dp_table.flat_max_nodes); beyond it both the oracle and the shard
   switch to hash tables. *)
let flat_max = 18

(* Sharded-table stripe count; must be a power of two. *)
let num_stripes = 128

(* ---- growable int vector (pair buffer) --------------------------- *)

type vec = { mutable buf : int array; mutable len : int }

let vec_create () = { buf = [||]; len = 0 }

let vec_push v x =
  let cap = Array.length v.buf in
  if v.len = cap then begin
    let buf = Array.make (if cap = 0 then 16 else 2 * cap) 0 in
    Array.blit v.buf 0 buf 0 v.len;
    v.buf <- buf
  end;
  v.buf.(v.len) <- x;
  v.len <- v.len + 1

(* ---- connectivity oracle ----------------------------------------- *)

(* Weak-closure connectivity: treat every simple edge inside [s] as a
   link and every complex edge with u ∪ v ⊆ s as a clique over its
   in-[s] cover.  This over-approximates Definition 3 (hypernode
   orientation is ignored; flexible w-relations ride along), and
   crucially it contains every set the sequential run tables: an
   entry S is always s1 ∪ s2 for two smaller entries joined by an
   edge with u ⊆ s1, v ⊆ s2, so by induction the closure glues all of
   S.  Over-approximation slack only ever emits extra pairs with a
   side that has no DP entry, which the emitter drops — see
   doc/algorithm.mld.  Uses only immutable graph indexes (no scratch
   arena), so it is safe on a shared graph from any domain. *)
let connected_weakly g s =
  match Ns.cardinal s with
  | 0 -> false
  | 1 -> true
  | _ ->
      let reach = ref (Ns.min_set s) in
      let continue = ref true in
      while !continue do
        let r = !reach in
        let grown = ref (Ns.union r (Ns.inter (G.simple_neighborhood g r) s)) in
        List.iter
          (fun (e : He.t) ->
            if Ns.subset (Ns.union e.u e.v) s then begin
              let cov = Ns.inter (He.covers e) s in
              if Ns.intersects cov !grown then grown := Ns.union !grown cov
            end)
          (G.complex_edges g);
        if Ns.equal !grown r then continue := false else reach := !grown
      done;
      Ns.equal !reach s

(* One oracle closure per worker domain.  Flat: a shared bool array
   over all 2^n subsets, filled in parallel (disjoint word-sized
   slots — race-free) and read-only afterwards.  Hashed: a private
   memo per domain, computing the closure on demand. *)
let build_oracles pool g jobs =
  let n = G.num_nodes g in
  if n <= flat_max then begin
    let size = 1 lsl n in
    let conn = Array.make size false in
    let nchunks = min size (jobs * 4) in
    let chunk = (size + nchunks - 1) / nchunks in
    Pool.run_fun pool nchunks (fun i _wid ->
        let lo = i * chunk and hi = min size ((i + 1) * chunk) in
        for key = lo to hi - 1 do
          conn.(key) <- connected_weakly g (Ns.unsafe_of_int key)
        done);
    Array.init jobs (fun _ s -> conn.(Ns.to_int s))
  end
  else
    Array.init jobs (fun _ ->
        let memo = Hashtbl.create 4096 in
        fun s ->
          let key = Ns.to_int s in
          match Hashtbl.find_opt memo key with
          | Some b -> b
          | None ->
              let b = connected_weakly g s in
              Hashtbl.replace memo key b;
              b)

(* ---- sharded DP table -------------------------------------------- *)

(* Layer-k protocol: reads hit only entries of size < k, finalized at
   the previous barrier, so flat reads are lock-free (distinct array
   slots, publication via the pool mutex); size-k updates go through
   the stripe mutex of the key.  Hash tables mutate buckets on every
   write, so in hashed mode reads take the stripe lock too. *)
type shard =
  | Sflat of { plans : Plan.t option array; ties : int array }
  | Shashed of (int, Plan.t * int) Hashtbl.t array

let shard_create g =
  let n = G.num_nodes g in
  if n <= flat_max then
    let size = 1 lsl n in
    Sflat { plans = Array.make size None; ties = Array.make size max_int }
  else
    Shashed
      (Array.init num_stripes (fun _ ->
           Hashtbl.create
             (max 16 (Hypergraph.Csg_enum.estimate_connected_subgraphs g
                      / num_stripes))))

let shard_find shard stripes s =
  match shard with
  | Sflat f -> f.plans.(Ns.to_int s)
  | Shashed tbls ->
      let key = Ns.to_int s in
      let sid = key land (num_stripes - 1) in
      let m = stripes.(sid) in
      Mutex.lock m;
      let r = Hashtbl.find_opt tbls.(sid) key in
      Mutex.unlock m;
      Option.map fst r

(* Keep the lexicographic minimum of (cost, tie).  Minimum-taking is
   commutative and associative, so the table contents after a layer
   barrier do not depend on domain interleaving; [tie] is the
   candidate's rank in the sequential emission order, so among
   equal-cost candidates the sequential winner (first seen, because
   sequential [update] replaces only on strictly lower cost) wins
   here too. *)
let shard_add shard stripes tie (plan : Plan.t) =
  let key = Ns.to_int plan.set in
  let sid = key land (num_stripes - 1) in
  let m = stripes.(sid) in
  Mutex.lock m;
  (match shard with
  | Sflat f ->
      let better =
        match f.plans.(key) with
        | None -> true
        | Some (old : Plan.t) ->
            plan.cost < old.cost || (plan.cost = old.cost && tie < f.ties.(key))
      in
      if better then begin
        f.plans.(key) <- Some plan;
        f.ties.(key) <- tie
      end
  | Shashed tbls -> (
      let tbl = tbls.(sid) in
      match Hashtbl.find_opt tbl key with
      | None -> Hashtbl.replace tbl key (plan, tie)
      | Some ((old : Plan.t), otie) ->
          if plan.cost < old.cost || (plan.cost = old.cost && tie < otie) then
            Hashtbl.replace tbl key (plan, tie)));
  Mutex.unlock m

let shard_iter f = function
  | Sflat { plans; _ } ->
      Array.iter (function Some p -> f p | None -> ()) plans
  | Shashed tbls ->
      Array.iter (fun tbl -> Hashtbl.iter (fun _ (p, _) -> f p) tbl) tbls

(* ---- the three phases -------------------------------------------- *)

let run_parallel ?obs ?tel ~model ?filter ?budget ~pool g =
  let jobs = Pool.jobs pool in
  let n = G.num_nodes g in
  Obs.Span.with_opt obs "enumerate:dphyp-par" (fun sp ->
      let parent = Core.Counters.create_shared ?budget () in
      let forks = Array.init jobs (fun _ -> Core.Counters.fork parent) in
      let gs =
        Array.init jobs (fun i -> if i = 0 then g else G.copy_scratch g)
      in
      (* Phase 0: connectivity oracle. *)
      let oracles =
        Obs.Span.with_opt obs "par:oracle" (fun _ ->
            build_oracles pool g jobs)
      in
      (* Phase 1: per-root enumeration.  Pairs are buffered per
         (root, result-cardinality); packed into one int when both
         sides fit (n <= 31), two otherwise.  Root 0 may grow into
         all of {1..n-1} and is the heaviest, so roots are submitted
         in ascending order. *)
      let stride = if n <= 31 then 1 else 2 in
      let buckets =
        Array.init n (fun _ -> Array.init (n + 1) (fun _ -> vec_create ()))
      in
      Obs.Span.with_opt obs "par:enumerate" (fun _ ->
          Pool.run_fun pool n (fun root wid ->
              let by_layer = buckets.(root) in
              let emit s1 s2 =
                let k = Ns.cardinal s1 + Ns.cardinal s2 in
                let v = by_layer.(k) in
                if stride = 1 then
                  vec_push v ((Ns.to_int s1 lsl n) lor Ns.to_int s2)
                else begin
                  vec_push v (Ns.to_int s1);
                  vec_push v (Ns.to_int s2)
                end
              in
              Core.Dphyp.run_root ~mem:oracles.(wid) ~emit
                ~counters:forks.(wid) gs.(wid) root));
      let total_pairs =
        Array.fold_left
          (fun acc bl -> Array.fold_left (fun a v -> a + v.len) acc bl)
          0 buckets
        / stride
      in
      (* Phase 2: layer-synchronous emission k = 2..n against the
         sharded table.  Within a layer the buffered pairs are
         replayed in sequential emission order — roots descending,
         recursion order within a root — and their position is the
         tie-break, so the surviving plans match the sequential run
         exactly. *)
      let shard = shard_create g in
      let stripes = Array.init num_stripes (fun _ -> Mutex.create ()) in
      (* Per-domain emit/merge time: each worker accumulates into its
         own slot (race-free), recorded into the telemetry histogram
         after the last layer barrier. *)
      let merge_s = Array.make jobs 0.0 in
      Ns.iter (fun v -> shard_add shard stripes 0 (Plan.scan g v))
        (G.all_nodes g);
      Obs.Span.with_opt obs "par:emit" (fun _ ->
          for k = 2 to n do
            let bvecs = ref [] in
            for root = 0 to n - 1 do
              let v = buckets.(root).(k) in
              if v.len > 0 then bvecs := v :: !bvecs
            done;
            (* prepending ascending roots leaves the list in
               descending-root order — the sequential order *)
            let bvecs = Array.of_list !bvecs in
            let nb = Array.length bvecs in
            let offs = Array.make (nb + 1) 0 in
            for i = 0 to nb - 1 do
              offs.(i + 1) <- offs.(i) + (bvecs.(i).len / stride)
            done;
            let total = offs.(nb) in
            if total > 0 then begin
              let nchunks = min total (jobs * 4) in
              let chunk = (total + nchunks - 1) / nchunks in
              Pool.run_fun pool nchunks (fun ci wid ->
                  let t0 = Obs.Span.now () in
                  Fun.protect ~finally:(fun () ->
                      merge_s.(wid) <- merge_s.(wid) +. (Obs.Span.now () -. t0))
                  @@ fun () ->
                  let lo = ci * chunk and hi = min total ((ci + 1) * chunk) in
                  if lo < hi then begin
                    let b = ref 0 in
                    while offs.(!b + 1) <= lo do
                      incr b
                    done;
                    let counters = forks.(wid) and gg = gs.(wid) in
                    let find = shard_find shard stripes in
                    for seq = lo to hi - 1 do
                      while offs.(!b + 1) <= seq do
                        incr b
                      done;
                      let v = bvecs.(!b) in
                      let pos = seq - offs.(!b) in
                      let s1, s2 =
                        if stride = 1 then
                          let p = v.buf.(pos) in
                          ( Ns.unsafe_of_int (p lsr n),
                            Ns.unsafe_of_int (p land ((1 lsl n) - 1)) )
                        else
                          ( Ns.unsafe_of_int v.buf.(2 * pos),
                            Ns.unsafe_of_int v.buf.((2 * pos) + 1) )
                      in
                      Core.Emit.emit_pair_with ~find
                        ~add:(fun rank plan ->
                          shard_add shard stripes ((seq * 2) + rank) plan)
                        ?filter ~model ~counters gg s1 s2
                    done
                  end)
            end
          done);
      (* Finalize: materialize a plain DP table (leaves are already in
         the shard) and fold the per-domain counters back. *)
      let dp = Dp.create_for g in
      shard_iter (Dp.force dp) shard;
      Array.iter (fun c -> Core.Counters.absorb ~into:parent c) forks;
      (match tel with
      | None -> ()
      | Some tel ->
          Array.iteri
            (fun i s ->
              if s > 0.0 then
                Obs.Export.observe_s tel
                  ~help:
                    "Per-domain seconds spent merging buffered pairs into \
                     the sharded DP table"
                  ~labels:[ ("domain", string_of_int i) ]
                  "joinopt_parallel_merge_seconds" s)
            merge_s);
      (match sp with
      | None -> ()
      | Some sp ->
          Obs.Span.set sp "jobs" (Obs.Span.Int jobs);
          Obs.Span.set sp "pairs_buffered" (Obs.Span.Int total_pairs);
          let st = Pool.stats pool in
          Obs.Span.set sp "pool_tasks" (Obs.Span.Int st.Pool.tasks_run);
          Obs.Span.set sp "pool_wait_ms"
            (Obs.Span.Float (st.Pool.wait_s *. 1000.));
          Array.iteri
            (fun i (c : Core.Counters.t) ->
              Obs.Span.set sp
                (Printf.sprintf "d%d_pairs" i)
                (Obs.Span.Int c.pairs_considered))
            forks);
      {
        Core.Optimizer.plan = Dp.find dp (G.all_nodes g);
        counters = parent;
        dp_entries = Dp.size dp;
        tier = None;
        attempts = [];
      })

let run ?obs ?tel ?(model = Costing.Cost_model.c_out) ?filter ?budget ~pool g
    =
  (* Wide graphs (n beyond the single-word width) don't fit the
     pair-packing scheme of the parallel replay, and exhaustive DP is
     not what anyone runs at that scale anyway — dispatch sequential
     and let the adaptive ladder's partitioned tier do its job. *)
  if Pool.jobs pool <= 1 || G.num_nodes g > Ns.small_capacity then
    Core.Optimizer.run ?obs ?tel ~model ?filter ?budget Core.Optimizer.Dphyp g
  else run_parallel ?obs ?tel ~model ?filter ?budget ~pool g
