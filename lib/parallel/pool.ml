(* A small fixed-size domain pool: [jobs - 1] worker domains plus the
   submitting domain itself, fed from one Mutex/Condition-protected
   queue.  Stdlib only — Domain, Mutex, Condition — no dependency on
   any external scheduler.

   The calling domain participates in draining the queue, so
   [create ~jobs:1] spawns no domains at all and [run_list] degrades
   to plain in-order sequential execution — the zero-overhead baseline
   the benchmarks compare against.

   Memory model: everything a task writes is published to the caller
   by the queue mutex (release on task completion, acquire in the
   barrier), so phase data handed across [run_list] calls needs no
   per-field synchronization. *)

type stats = {
  tasks_run : int;
  batches : int;
  wait_s : float;  (** cumulative time workers spent blocked for work *)
}

type t = {
  jobs : int;
  m : Mutex.t;
  work_cv : Condition.t;  (* workers: queue non-empty or shutdown *)
  done_cv : Condition.t;  (* coordinator: batch finished *)
  queue : (int * (int -> unit)) Queue.t;
  mutable pending : int;  (* tasks submitted and not yet finished *)
  mutable stop : bool;
  mutable err : (int * exn * Printexc.raw_backtrace) option;
  mutable tasks_run : int;
  mutable batches : int;
  mutable wait_s : float;
  mutable workers : unit Domain.t list;
}

let record_error p i e bt =
  (* keep the lowest task index so which exception surfaces does not
     depend on domain interleaving when several tasks fail *)
  match p.err with
  | Some (j, _, _) when j <= i -> ()
  | _ -> p.err <- Some (i, e, bt)

(* Run one task outside the lock; queued work after a failure is
   skipped (but still counted down) so a batch with an error drains
   quickly instead of burning the remaining queue. *)
let step p wid =
  match Queue.take_opt p.queue with
  | None -> false
  | Some (i, f) ->
      let cancelled = p.err <> None in
      Mutex.unlock p.m;
      (if not cancelled then
         try f wid
         with e -> (
           let bt = Printexc.get_raw_backtrace () in
           Mutex.lock p.m;
           record_error p i e bt;
           Mutex.unlock p.m));
      Mutex.lock p.m;
      p.tasks_run <- p.tasks_run + 1;
      p.pending <- p.pending - 1;
      if p.pending = 0 then Condition.broadcast p.done_cv;
      true

let worker p wid =
  Mutex.lock p.m;
  let continue = ref true in
  while !continue do
    if step p wid then ()
    else if p.stop then continue := false
    else begin
      let t0 = Unix.gettimeofday () in
      Condition.wait p.work_cv p.m;
      p.wait_s <- p.wait_s +. (Unix.gettimeofday () -. t0)
    end
  done;
  Mutex.unlock p.m

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let p =
    {
      jobs;
      m = Mutex.create ();
      work_cv = Condition.create ();
      done_cv = Condition.create ();
      queue = Queue.create ();
      pending = 0;
      stop = false;
      err = None;
      tasks_run = 0;
      batches = 0;
      wait_s = 0.0;
      workers = [];
    }
  in
  p.workers <-
    List.init (jobs - 1) (fun i -> Domain.spawn (fun () -> worker p (i + 1)));
  p

let jobs p = p.jobs

let run_list p tasks =
  match tasks with
  | [] -> ()
  | _ ->
      Mutex.lock p.m;
      if p.stop then begin
        Mutex.unlock p.m;
        invalid_arg "Pool.run_list: pool is shut down"
      end;
      if p.pending > 0 then begin
        Mutex.unlock p.m;
        invalid_arg "Pool.run_list: a batch is already running"
      end;
      p.err <- None;
      List.iteri (fun i f -> Queue.add (i, f) p.queue) tasks;
      p.pending <- List.length tasks;
      p.batches <- p.batches + 1;
      Condition.broadcast p.work_cv;
      (* the caller drains the queue as worker 0, then waits for the
         stragglers running on other domains *)
      while step p 0 do
        ()
      done;
      while p.pending > 0 do
        Condition.wait p.done_cv p.m
      done;
      let err = p.err in
      p.err <- None;
      Mutex.unlock p.m;
      (match err with
      | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ())

let run_fun p k f = run_list p (List.init k (fun i wid -> f i wid))

let shutdown p =
  Mutex.lock p.m;
  if not p.stop then begin
    p.stop <- true;
    Condition.broadcast p.work_cv
  end;
  let ws = p.workers in
  p.workers <- [];
  Mutex.unlock p.m;
  List.iter Domain.join ws

let with_pool ~jobs f =
  let p = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown p) (fun () -> f p)

let stats p =
  Mutex.lock p.m;
  let s = { tasks_run = p.tasks_run; batches = p.batches; wait_s = p.wait_s } in
  Mutex.unlock p.m;
  s
