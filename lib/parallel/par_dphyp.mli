(** Domain-parallel DPhyp: layer-synchronous enumeration over a
    sharded DP table.

    The sequential algorithm's only cross-root data dependency is the
    dpTable-membership connectivity test, and every csg-cmp-pair of
    size [k] reads only DP entries of size [< k].  This module
    exploits both facts (see doc/algorithm.mld, "Parallel
    enumeration"):

    + {b Oracle} — a pure connectivity oracle replaces dpTable
      membership (precomputed over all subsets for [n <= 18],
      per-domain memoized closure beyond).  The oracle may
      over-approximate exact connectivity; over-approximation only
      adds pairs with a side that never gets a DP entry, which the
      emitter drops, so plans, [ccp_emitted], [cost_calls] and
      [filter_rejected] are identical to the sequential run.
    + {b Enumerate} — each root of the descending root loop runs on
      some domain ({!Core.Dphyp.run_root}) against a per-domain
      {!Hypergraph.Graph.copy_scratch}, recording its csg-cmp-pairs
      bucketed by result cardinality.
    + {b Emit} — for each layer [k = 2 .. n], the recorded size-[k]
      pairs are replayed across domains against a sharded table:
      lookups of finalized smaller layers are lock-free, size-[k]
      updates go through stripe mutexes, and ties between equal-cost
      candidates are broken by the candidate's rank in the sequential
      emission order, so the winning plan — and hence the output for
      every [--jobs N] — is byte-identical to the sequential one.

    Budgets use the shared atomic tally of
    {!Core.Counters.create_shared}: the total considered pairs across
    all domains is capped, overshooting the sequential trigger point
    by at most one in-flight pair per domain. *)

val run :
  ?obs:Obs.Span.ctx ->
  ?tel:Obs.Export.t ->
  ?model:Costing.Cost_model.t ->
  ?filter:Core.Emit.filter ->
  ?budget:int ->
  pool:Pool.t ->
  Hypergraph.Graph.t ->
  Core.Optimizer.result
(** Optimize with DPhyp using every domain of [pool].  With a
    single-domain pool this dispatches to the sequential
    {!Core.Optimizer.run}, so [--jobs 1] is the unmodified algorithm.
    [?obs] records an ["enumerate:dphyp-par"] span with per-phase
    child spans and pool/per-domain attributes.  [?tel] records each
    worker domain's pair-merge time into the
    [joinopt_parallel_merge_seconds{domain=...}] histogram.
    @raise Core.Counters.Budget_exhausted when [?budget] is spent. *)

val connected_weakly :
  Hypergraph.Graph.t -> Nodeset.Node_set.t -> bool
(** The oracle's notion of connectivity: closure from the minimal
    node, growing by simple neighbors inside the set and by complex
    edges whose [u ∪ v] lies inside the set.  Over-approximates
    Definition 3 (it ignores hypernode orientation), which is exactly
    the slack the plan-identity argument tolerates.  Exposed for
    tests. *)
