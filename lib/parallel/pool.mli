(** A fixed-size domain pool (stdlib only: [Domain] + [Mutex] /
    [Condition]).

    [create ~jobs] spawns [jobs - 1] worker domains; the submitting
    domain itself participates in every batch as worker [0], so
    [jobs = 1] spawns nothing and runs tasks inline in submission
    order — the zero-overhead sequential baseline.

    Batches are synchronous: {!run_list} returns only after every
    task has finished (or been skipped after a failure), and the
    queue mutex publishes all task writes to the caller, so data
    produced by one batch can be read freely by the next without
    further synchronization. *)

type t

type stats = {
  tasks_run : int;  (** tasks executed (or skipped-after-error) so far *)
  batches : int;  (** {!run_list} calls so far *)
  wait_s : float;  (** cumulative time workers spent blocked for work *)
}

val create : jobs:int -> t
(** @raise Invalid_argument if [jobs < 1]. *)

val jobs : t -> int

val run_list : t -> (int -> unit) list -> unit
(** Run every task, passing each the id (0 .. jobs-1) of the worker
    domain executing it — tasks index per-domain scratch state with
    it.  Tasks start in submission order (put the heaviest first).
    If a task raises, remaining queued tasks are skipped and the
    exception of the lowest-indexed failing task is re-raised here
    with its backtrace.  Not reentrant: one batch at a time.
    @raise Invalid_argument after {!shutdown} or from inside a task. *)

val run_fun : t -> int -> (int -> int -> unit) -> unit
(** [run_fun p k f] = [run_list p] over [f 0; …; f (k-1)], each
    receiving [(task_index, worker_id)]. *)

val shutdown : t -> unit
(** Stop and join all worker domains.  Idempotent. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [create], run, [shutdown] (also on exception). *)

val stats : t -> stats
