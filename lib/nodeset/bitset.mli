(** Arbitrary-width bitsets backed by an [int array].

    {!Node_set} is specialised for node indices (single-word fast path
    below {!Node_set.small_capacity}, multi-word beyond).  This module
    exists for the places where the universe is not node indices: per-plan
    predicate sets [p_S] (Section 3.5 attaches the set of applicable
    predicates to every plan class as a bit vector), edge-id sets, and
    any catalog-sized universe.  Values are immutable from the outside
    — every operation returns a fresh set. *)

type t

val create : int -> t
(** [create width] is the empty set over universe [{0..width-1}].
    @raise Invalid_argument on negative width. *)

val width : t -> int

val is_empty : t -> bool

val mem : int -> t -> bool

val add : int -> t -> t

val add_all : int list -> t -> t
(** [add_all is t] adds every index in [is] with a single copy of the
    backing array (folding {!add} copies once per element). *)

val remove : int -> t -> t

val singleton : int -> int -> t
(** [singleton width i]. *)

val union : t -> t -> t
(** @raise Invalid_argument on width mismatch. *)

val union_add_all : int list -> t -> t -> t
(** [union_add_all is a b] is [add_all is (union a b)] with a single
    array allocation — the applied-predicate update every plan join
    performs. *)

val inter : t -> t -> t

val diff : t -> t -> t

val subset : t -> t -> bool

val disjoint : t -> t -> bool

val equal : t -> t -> bool

val compare : t -> t -> int

val cardinal : t -> int

val min_elt : t -> int
(** Smallest member.  @raise Invalid_argument on the empty set. *)

val min_elt_opt : t -> int option

val full : int -> t
(** [full width] has all [width] bits set. *)

val complement : t -> t

val iter : (int -> unit) -> t -> unit

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val of_list : int -> int list -> t

val to_list : t -> int list

val hash : t -> int

val pp : Format.formatter -> t -> unit
