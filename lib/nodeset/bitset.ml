(* Immutable arbitrary-width bitset over int arrays, 32 bits per word.
   A power-of-two word size keeps the index→(word, bit) split a shift
   and a mask — [mem]/[add] sit on the per-csg-cmp-pair path via the
   applied-predicate sets, where an integer division is measurable. *)

let bits_per_word = 32

let word_of i = i lsr 5

let bit_of i = i land 31

type t = { width : int; words : int array }

let nwords width = (width + bits_per_word - 1) / bits_per_word

let create width =
  if width < 0 then invalid_arg "Bitset.create: negative width";
  { width; words = Array.make (max 1 (nwords width)) 0 }

let width t = t.width

let check t i =
  if i < 0 || i >= t.width then
    invalid_arg (Printf.sprintf "Bitset: index %d out of range [0,%d)" i t.width)

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let mem i t =
  check t i;
  (t.words.(word_of i) lsr bit_of i) land 1 = 1

let add i t =
  check t i;
  let words = Array.copy t.words in
  words.(word_of i) <- words.(word_of i) lor (1 lsl bit_of i);
  { t with words }

let add_all is t =
  match is with
  | [] -> t
  | _ ->
      let words = Array.copy t.words in
      List.iter
        (fun i ->
          check t i;
          words.(word_of i) <- words.(word_of i) lor (1 lsl bit_of i))
        is;
      { t with words }

let check_same a b =
  if a.width <> b.width then invalid_arg "Bitset: width mismatch"

let union_add_all is a b =
  check_same a b;
  let words = Array.make (Array.length a.words) 0 in
  for k = 0 to Array.length words - 1 do
    words.(k) <- a.words.(k) lor b.words.(k)
  done;
  List.iter
    (fun i ->
      check a i;
      words.(word_of i) <- words.(word_of i) lor (1 lsl bit_of i))
    is;
  { a with words }

let remove i t =
  check t i;
  let words = Array.copy t.words in
  words.(word_of i) <- words.(word_of i) land lnot (1 lsl bit_of i);
  { t with words }

let singleton width i = add i (create width)

let map2 op a b =
  check_same a b;
  { a with words = Array.map2 op a.words b.words }

let union a b = map2 ( lor ) a b

let inter a b = map2 ( land ) a b

let diff a b = map2 (fun x y -> x land lnot y) a b

let subset a b =
  check_same a b;
  let ok = ref true in
  for k = 0 to Array.length a.words - 1 do
    if a.words.(k) land lnot b.words.(k) <> 0 then ok := false
  done;
  !ok

let disjoint a b =
  check_same a b;
  let ok = ref true in
  for k = 0 to Array.length a.words - 1 do
    if a.words.(k) land b.words.(k) <> 0 then ok := false
  done;
  !ok

let equal a b = a.width = b.width && a.words = b.words

let compare a b =
  let c = Int.compare a.width b.width in
  if c <> 0 then c else Stdlib.compare a.words b.words

let popcount x =
  let x = x - ((x lsr 1) land 0x5555555555555555) in
  let x = (x land 0x3333333333333333) + ((x lsr 2) land 0x3333333333333333) in
  let x = (x + (x lsr 4)) land 0x0F0F0F0F0F0F0F0F in
  (x * 0x0101010101010101) lsr 56

let cardinal t = Array.fold_left (fun n w -> n + popcount w) 0 t.words

let min_elt_opt t =
  let n = Array.length t.words in
  let rec go k =
    if k = n then None
    else if t.words.(k) = 0 then go (k + 1)
    else begin
      let w = t.words.(k) in
      let b = ref 0 in
      while (w lsr !b) land 1 = 0 do
        incr b
      done;
      Some ((k * bits_per_word) + !b)
    end
  in
  go 0

let min_elt t =
  match min_elt_opt t with
  | Some i -> i
  | None -> invalid_arg "Bitset.min_elt: empty set"

let full w =
  let t = create w in
  let words = t.words in
  for i = 0 to w - 1 do
    words.(word_of i) <- words.(word_of i) lor (1 lsl bit_of i)
  done;
  { t with words }

let complement t = diff (full t.width) t

let iter f t =
  for i = 0 to t.width - 1 do
    if mem i t then f i
  done

let fold f t acc =
  let acc = ref acc in
  iter (fun i -> acc := f i !acc) t;
  !acc

let of_list width l = List.fold_left (fun t i -> add i t) (create width) l

let to_list t = List.rev (fold (fun i l -> i :: l) t [])

let hash t = Hashtbl.hash t.words

let pp ppf t =
  Format.fprintf ppf "{";
  let first = ref true in
  iter
    (fun i ->
      if !first then first := false else Format.fprintf ppf ",";
      Format.pp_print_int ppf i)
    t;
  Format.fprintf ppf "}"
