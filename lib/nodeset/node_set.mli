(** Sets of query-graph nodes behind a width-polymorphic bitset.

    A node is a small non-negative integer (the index of a relation in
    the query).  Sets over nodes [0, 62) live in a single unboxed
    OCaml [int] — bit-for-bit the representation the DP hot paths were
    tuned on — while larger sets transparently switch to a multi-word
    representation, lifting the historic 62-relation ceiling up to
    {!max_nodes} relations.  Which representation a value uses is
    unobservable through this interface: [equal], [compare] and [hash]
    are value-based and agree across representations.

    The total node order [<=] required by DPhyp (Definition 1 of the
    paper) is the natural order on indices; [min_elt] therefore
    returns the canonical representative [min(S)] used for hypernode
    traversal (Section 2.3). *)

type t
(** A set of nodes.  Either an immediate [int] whose [i]-th bit is set
    iff node [i] is a member (all sets over nodes < {!small_capacity}
    constructed from small sets), or a boxed array of 62-bit words for
    wider sets. *)

type node = int
(** A node index in [0, max_nodes). *)

val max_nodes : int
(** Maximum number of distinct nodes supported (1024). *)

val small_capacity : int
(** Width of the single-word fast path (62): sets touching only nodes
    below this stay unboxed immediates, and graphs with at most this
    many relations run the exact same representation as before the
    widening. *)

val empty : t
(** The empty set. *)

val is_empty : t -> bool

val singleton : node -> t
(** [singleton v] is [{v}].  @raise Invalid_argument if [v] is out of
    range. *)

val mem : node -> t -> bool

val add : node -> t -> t

val remove : node -> t -> t

val union : t -> t -> t

val inter : t -> t -> t

val diff : t -> t -> t
(** [diff a b] is [a \ b]. *)

val subset : t -> t -> bool
(** [subset a b] iff [a ⊆ b]. *)

val strict_subset : t -> t -> bool
(** [strict_subset a b] iff [a ⊂ b]. *)

val disjoint : t -> t -> bool
(** [disjoint a b] iff [a ∩ b = ∅]. *)

val intersects : t -> t -> bool
(** [intersects a b] iff [a ∩ b ≠ ∅]. *)

val equal : t -> t -> bool
(** Value equality, independent of representation width. *)

val compare : t -> t -> int
(** Total order on sets (numeric order of the underlying bits,
    independent of representation width); this coincides with the
    lexicographic order on sets used in Section 5.4 of the paper when
    comparing [min] elements first. *)

val cardinal : t -> int
(** Number of members (population count). *)

val is_singleton : t -> bool

val min_elt : t -> node
(** Smallest member, i.e. the canonical representative [min(S)].
    @raise Not_found on the empty set. *)

val min_elt_opt : t -> node option

val max_elt : t -> node
(** Largest member.  @raise Not_found on the empty set. *)

val min_set : t -> t
(** [min_set s] is [{min_elt s}], or [empty] if [s] is empty — the
    paper's [min(S)] as a set. *)

val without_min : t -> t
(** [without_min s] is [s \ min_set s] — the paper's [S \ min(S)],
    written [min̄(S)]. *)

val full : int -> t
(** [full n] is [{0, 1, ..., n-1}].  Values up to {!small_capacity}
    stay on the single-word path; beyond it the result is wide.
    @raise Invalid_argument if [n] is negative or exceeds
    {!max_nodes}. *)

val range : int -> int -> t
(** [range lo hi] is [{lo, ..., hi}] (empty if [lo > hi]). *)

val below : node -> t
(** [below v] is [{w | w < v}] — used to build the paper's forbidden
    set [B_v = {w | w ≤ v}] as [add v (below v)]. *)

val upto : node -> t
(** [upto v] is [B_v = {w | w ≤ v}]. *)

val of_list : node list -> t

val to_list : t -> node list
(** Members in increasing order. *)

val iter : (node -> unit) -> t -> unit
(** Iterate members in increasing order. *)

val iter_desc : (node -> unit) -> t -> unit
(** Iterate members in decreasing order (the order in which [Solve]
    and [EmitCsg] walk nodes). *)

val fold : (node -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over members in increasing order. *)

val union_over_array : t array -> t -> t
(** [union_over_array arr s] is [⋃ {arr.(v) | v ∈ s}], allocation-free
    when everything involved is single-word.  [arr] must be indexed by
    node and cover every member of [s]. *)

val for_all : (node -> bool) -> t -> bool

val exists : (node -> bool) -> t -> bool

val filter : (node -> bool) -> t -> t

val choose : t -> node
(** An arbitrary member (the smallest).  @raise Not_found if empty. *)

val fits_small : t -> bool
(** Whether the {e value} fits the single-word fast path (all members
    below {!small_capacity}) — true also for a wide-represented set
    whose upper words are all zero. *)

val to_int : t -> int
(** The raw single-word bit pattern.  Injective over sets that
    {!fits_small}; useful as a hash-table key on the small path.
    @raise Invalid_argument if the set has a member >=
    {!small_capacity}. *)

val unsafe_of_int : int -> t
(** Reinterpret a single-word bit pattern as a set.  The caller must
    guarantee the value is non-negative. *)

val hash : t -> int
(** Value-based hash: equal sets hash alike regardless of
    representation width (on the small path this is the raw bit
    pattern, unchanged from the pre-widening behaviour). *)

val pp : Format.formatter -> t -> unit
(** Prints as [{R0,R3,R5}]. *)

val to_string : t -> string

val pp_named : (node -> string) -> Format.formatter -> t -> unit
(** Prints with a caller-supplied node-naming function. *)

(** Test-only hooks for the differential oracle layer
    ([test/test_widening.ml]): they let the small-graph algorithms run
    entirely on wide representations so the two paths can be compared
    on identical inputs.  Not for production use. *)
module Internal : sig
  val is_wide_repr : t -> bool
  (** Whether the value currently uses the multi-word representation
      (an implementation detail — NOT whether the set is large). *)

  val force_wide : t -> t
  (** The same set, re-represented as a (one-word) wide value. *)

  val force_wide_mode : unit -> bool
  (** Whether constructors are currently routed to the wide
      representation. *)

  val with_force_wide : (unit -> 'a) -> 'a
  (** Run a thunk with every constructor ([singleton], [add], [full],
      [range], [below], [upto], [of_list], ...) producing wide
      representations regardless of width, restoring the previous mode
      afterwards (exception-safe). *)
end
