(** Sets of query-graph nodes represented as native-int bitsets.

    A node is a small non-negative integer (the index of a relation in
    the query).  The whole set lives in a single OCaml [int], which
    limits queries to {!max_nodes} (= 62) relations — far beyond what
    exhaustive dynamic programming can optimize anyway.

    The total node order [<=] required by DPhyp (Definition 1 of the
    paper) is the natural order on indices; [min_elt] therefore
    returns the canonical representative [min(S)] used for hypernode
    traversal (Section 2.3). *)

type t = private int
(** A set of nodes.  The [i]-th bit is set iff node [i] is a member.
    Exposed as [private int] so that performance-critical callers can
    read the raw bits, while construction stays within this module. *)

type node = int
(** A node index in [0, max_nodes). *)

val max_nodes : int
(** Maximum number of distinct nodes supported (62). *)

val empty : t
(** The empty set. *)

val is_empty : t -> bool

val singleton : node -> t
(** [singleton v] is [{v}].  @raise Invalid_argument if [v] is out of
    range. *)

val mem : node -> t -> bool

val add : node -> t -> t

val remove : node -> t -> t

val union : t -> t -> t

val inter : t -> t -> t

val diff : t -> t -> t
(** [diff a b] is [a \ b]. *)

val subset : t -> t -> bool
(** [subset a b] iff [a ⊆ b]. *)

val strict_subset : t -> t -> bool
(** [strict_subset a b] iff [a ⊂ b]. *)

val disjoint : t -> t -> bool
(** [disjoint a b] iff [a ∩ b = ∅]. *)

val intersects : t -> t -> bool
(** [intersects a b] iff [a ∩ b ≠ ∅]. *)

val equal : t -> t -> bool

val compare : t -> t -> int
(** Total order on sets (numeric order of the underlying bits); this
    coincides with the lexicographic order on sets used in Section 5.4
    of the paper when comparing [min] elements first. *)

val cardinal : t -> int
(** Number of members (population count). *)

val is_singleton : t -> bool

val min_elt : t -> node
(** Smallest member, i.e. the canonical representative [min(S)].
    @raise Not_found on the empty set. *)

val min_elt_opt : t -> node option

val max_elt : t -> node
(** Largest member.  @raise Not_found on the empty set. *)

val min_set : t -> t
(** [min_set s] is [{min_elt s}], or [empty] if [s] is empty — the
    paper's [min(S)] as a set. *)

val without_min : t -> t
(** [without_min s] is [s \ min_set s] — the paper's [S \ min(S)],
    written [min̄(S)]. *)

val full : int -> t
(** [full n] is [{0, 1, ..., n-1}].  @raise Invalid_argument if [n]
    is negative or exceeds {!max_nodes}. *)

val range : int -> int -> t
(** [range lo hi] is [{lo, ..., hi}] (empty if [lo > hi]). *)

val below : node -> t
(** [below v] is [{w | w < v}] — used to build the paper's forbidden
    set [B_v = {w | w ≤ v}] as [add v (below v)]. *)

val upto : node -> t
(** [upto v] is [B_v = {w | w ≤ v}]. *)

val of_list : node list -> t

val to_list : t -> node list
(** Members in increasing order. *)

val iter : (node -> unit) -> t -> unit
(** Iterate members in increasing order. *)

val iter_desc : (node -> unit) -> t -> unit
(** Iterate members in decreasing order (the order in which [Solve]
    and [EmitCsg] walk nodes). *)

val fold : (node -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over members in increasing order. *)

val union_over_array : t array -> t -> t
(** [union_over_array arr s] is [⋃ {arr.(v) | v ∈ s}], allocation-free.
    [arr] must be indexed by node and cover every member of [s]. *)

val for_all : (node -> bool) -> t -> bool

val exists : (node -> bool) -> t -> bool

val filter : (node -> bool) -> t -> t

val choose : t -> node
(** An arbitrary member (the smallest).  @raise Not_found if empty. *)

val to_int : t -> int
(** The raw bit pattern.  Injective; useful as a hash-table key. *)

val unsafe_of_int : int -> t
(** Reinterpret a bit pattern as a set.  The caller must guarantee the
    value is non-negative. *)

val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Prints as [{R0,R3,R5}]. *)

val to_string : t -> string

val pp_named : (node -> string) -> Format.formatter -> t -> unit
(** Prints with a caller-supplied node-naming function. *)
