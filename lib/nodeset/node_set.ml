(* Native-int bitset implementation of node sets.

   Bit tricks used throughout:
   - lowest set bit of [s]:      [s land (-s)]
   - clear lowest set bit:       [s land (s - 1)]
   - population count:           folded 64-bit popcount below. *)

type t = int

type node = int

let max_nodes = 62

let empty = 0

let is_empty s = s = 0

let check_node v =
  if v < 0 || v >= max_nodes then
    invalid_arg (Printf.sprintf "Node_set: node %d out of range [0,%d)" v max_nodes)

let singleton v =
  check_node v;
  1 lsl v

let mem v s = (s lsr v) land 1 = 1

let add v s =
  check_node v;
  s lor (1 lsl v)

let remove v s = s land lnot (1 lsl v)

let union a b = a lor b

let inter a b = a land b

let diff a b = a land lnot b

let subset a b = a land lnot b = 0

let equal a b = a = b

let strict_subset a b = subset a b && a <> b

let disjoint a b = a land b = 0

let intersects a b = a land b <> 0

let compare = Int.compare

(* SWAR popcount on the 62 usable bits. *)
let cardinal s =
  let x = s - ((s lsr 1) land 0x5555555555555555) in
  let x = (x land 0x3333333333333333) + ((x lsr 2) land 0x3333333333333333) in
  let x = (x + (x lsr 4)) land 0x0F0F0F0F0F0F0F0F in
  (x * 0x0101010101010101) lsr 56

let is_singleton s = s <> 0 && s land (s - 1) = 0

(* Number of trailing zeros via de-Bruijn-free loop; sets are small so
   a simple shift loop would do, but binary search is branch-cheap. *)
let ntz s =
  let s = s land (-s) in
  let n = ref 0 in
  let s = ref s in
  if !s land 0xFFFFFFFF = 0 then begin n := !n + 32; s := !s lsr 32 end;
  if !s land 0xFFFF = 0 then begin n := !n + 16; s := !s lsr 16 end;
  if !s land 0xFF = 0 then begin n := !n + 8; s := !s lsr 8 end;
  if !s land 0xF = 0 then begin n := !n + 4; s := !s lsr 4 end;
  if !s land 0x3 = 0 then begin n := !n + 2; s := !s lsr 2 end;
  if !s land 0x1 = 0 then n := !n + 1;
  !n

let min_elt s = if s = 0 then raise Not_found else ntz s

let min_elt_opt s = if s = 0 then None else Some (ntz s)

let max_elt s =
  if s = 0 then raise Not_found
  else begin
    let v = ref 0 in
    let s = ref s in
    if !s land (0x3FFFFFFF lsl 32) <> 0 then begin v := !v + 32; s := !s lsr 32 end;
    if !s land (0xFFFF lsl 16) <> 0 then begin v := !v + 16; s := !s lsr 16 end;
    if !s land (0xFF lsl 8) <> 0 then begin v := !v + 8; s := !s lsr 8 end;
    if !s land (0xF lsl 4) <> 0 then begin v := !v + 4; s := !s lsr 4 end;
    if !s land (0x3 lsl 2) <> 0 then begin v := !v + 2; s := !s lsr 2 end;
    if !s land 0x2 <> 0 then v := !v + 1;
    !v
  end

let min_set s = s land (-s)

let without_min s = s land (s - 1)

let full n =
  if n < 0 || n > max_nodes then
    invalid_arg (Printf.sprintf "Node_set.full: %d out of range [0,%d]" n max_nodes);
  if n = 0 then 0 else (1 lsl n) - 1

let range lo hi =
  if lo > hi then 0
  else begin
    check_node lo;
    check_node hi;
    ((1 lsl (hi - lo + 1)) - 1) lsl lo
  end

let below v =
  check_node v;
  (1 lsl v) - 1

let upto v =
  check_node v;
  (1 lsl (v + 1)) - 1

let of_list vs = List.fold_left (fun s v -> add v s) empty vs

let iter f s =
  let s = ref s in
  while !s <> 0 do
    let v = ntz !s in
    f v;
    s := !s land (!s - 1)
  done

let iter_desc f s =
  let s = ref s in
  while !s <> 0 do
    let v = max_elt !s in
    f v;
    s := remove v !s
  done

let fold f s acc =
  let acc = ref acc in
  iter (fun v -> acc := f v !acc) s;
  !acc

(* Union of per-node table entries over the members of [s].  This is
   the inner loop of neighborhood computation (per-node simple
   neighbors, incident-edge covers), written without closures so the
   common path allocates nothing. *)
let union_over_array (arr : t array) s =
  let acc = ref 0 in
  let s = ref s in
  while !s <> 0 do
    acc := !acc lor arr.(ntz !s);
    s := !s land (!s - 1)
  done;
  !acc

let to_list s = List.rev (fold (fun v l -> v :: l) s [])

let for_all p s =
  let ok = ref true in
  let s = ref s in
  while !ok && !s <> 0 do
    let v = ntz !s in
    if not (p v) then ok := false;
    s := !s land (!s - 1)
  done;
  !ok

let exists p s = not (for_all (fun v -> not (p v)) s)

let filter p s = fold (fun v acc -> if p v then add v acc else acc) s empty

let choose = min_elt

let to_int s = s

let unsafe_of_int i = i

let hash s = s

let pp_named name ppf s =
  Format.fprintf ppf "{";
  let first = ref true in
  iter
    (fun v ->
      if !first then first := false else Format.fprintf ppf ",";
      Format.pp_print_string ppf (name v))
    s;
  Format.fprintf ppf "}"

let pp ppf s = pp_named (fun v -> "R" ^ string_of_int v) ppf s

let to_string s = Format.asprintf "%a" pp s
