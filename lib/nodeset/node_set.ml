(* Width-polymorphic node sets: a single-word fast path and a
   multi-word wide path behind one abstract type.

   Representation (the zarith trick): a value of type [t] is either

   - an immediate OCaml [int] — the historic single-word bitset over
     nodes 0..61, bit-for-bit identical to what the whole DP stack ran
     on when [max_nodes] was 62; or
   - a boxed [int array] of 62-bit words — word [k] covers nodes
     [62k, 62k+62), so word 0 of a wide set has exactly the small
     layout.

   [Obj.is_int] discriminates the two in one tag test, and small sets
   stay unboxed immediates: the n <= 62 hot path allocates nothing and
   compiles to the same bit twiddling as before the widening.

   Wide values are NOT canonicalized: an operation over wide inputs
   yields a wide result even when the value would fit one word
   ("infectious wideness").  All observers are therefore value-based —
   [equal], [compare] and [hash] agree across representations — which
   is also what lets the differential tests run the small-graph
   algorithms entirely on wide representations (see [Internal]).

   Bit tricks used throughout:
   - lowest set bit of [s]:      [s land (-s)]
   - clear lowest set bit:       [s land (s - 1)]
   - population count:           folded 64-bit popcount below. *)

type t = Obj.t

type node = int

let () = assert (Sys.int_size >= 63)

let bits_per_word = 62

(* all 62 usable bits of one word: 2^62 - 1 = max_int on 64-bit *)
let word_mask = max_int

let max_nodes = 1024

let small_capacity = bits_per_word

(* ---------- representation helpers ---------- *)

let sm (x : int) : t = Obj.repr x
let smv (s : t) : int = Obj.obj s
let wd (a : int array) : t = Obj.repr a
let wdv (s : t) : int array = Obj.obj s
let is_small (s : t) = Obj.is_int s

(* Constructors consult this to route even single-word values to the
   wide representation — a hook for the differential tests (see
   [Internal]); never set in production. *)
let force_wide_flag = ref false

let word_of v = v / bits_per_word
let bit_of v = v mod bits_per_word

(* word [k] of a wide payload, 0 beyond its length *)
let word a k = if k < Array.length a then a.(k) else 0

let words (s : t) : int array = if is_small s then [| smv s |] else wdv s

(* index of the last nonzero word (0 if all words are zero) *)
let last_nonzero a =
  let k = ref (Array.length a - 1) in
  while !k > 0 && a.(!k) = 0 do decr k done;
  !k

let fits_small s = is_small s || last_nonzero (wdv s) = 0

let empty = sm 0

let is_empty s =
  if is_small s then smv s = 0
  else begin
    let a = wdv s in
    let all = ref true in
    for k = 0 to Array.length a - 1 do
      if a.(k) <> 0 then all := false
    done;
    !all
  end

let check_node v =
  if v < 0 || v >= max_nodes then
    invalid_arg (Printf.sprintf "Node_set: node %d out of range [0,%d)" v max_nodes)

let wide_singleton v =
  let a = Array.make (word_of v + 1) 0 in
  a.(word_of v) <- 1 lsl bit_of v;
  wd a

let singleton v =
  check_node v;
  if v < bits_per_word && not !force_wide_flag then sm (1 lsl v)
  else wide_singleton v

let mem v s =
  if is_small s then v >= 0 && v < bits_per_word && (smv s lsr v) land 1 = 1
  else
    let a = wdv s in
    let k = word_of v in
    v >= 0 && k < Array.length a && (a.(k) lsr bit_of v) land 1 = 1

let add v s =
  check_node v;
  if is_small s && v < bits_per_word && not !force_wide_flag then
    sm (smv s lor (1 lsl v))
  else begin
    let a = words s in
    let la = Array.length a in
    let r = Array.make (max la (word_of v + 1)) 0 in
    Array.blit a 0 r 0 la;
    r.(word_of v) <- r.(word_of v) lor (1 lsl bit_of v);
    wd r
  end

(* [remove] stays lenient like it always was: removing an out-of-range
   node is a no-op, not an error. *)
let remove v s =
  if is_small s then
    if v < 0 || v >= bits_per_word then s
    else sm (smv s land lnot (1 lsl v))
  else begin
    let a = wdv s in
    let k = word_of v in
    if v < 0 || k >= Array.length a then s
    else begin
      let r = Array.copy a in
      r.(k) <- r.(k) land lnot (1 lsl bit_of v);
      wd r
    end
  end

(* generic word-wise combination of two payloads *)
let op2 f a b =
  let la = Array.length a and lb = Array.length b in
  let l = if la > lb then la else lb in
  let r = Array.make l 0 in
  for k = 0 to l - 1 do
    r.(k) <- f (word a k) (word b k)
  done;
  wd r

let union a b =
  if is_small a && is_small b then sm (smv a lor smv b)
  else op2 ( lor ) (words a) (words b)

let inter a b =
  if is_small a && is_small b then sm (smv a land smv b)
  else op2 ( land ) (words a) (words b)

let diff a b =
  if is_small a && is_small b then sm (smv a land lnot (smv b))
  else op2 (fun x y -> x land lnot y) (words a) (words b)

let subset a b =
  if is_small a && is_small b then smv a land lnot (smv b) = 0
  else begin
    let wa = words a and wb = words b in
    let l = max (Array.length wa) (Array.length wb) in
    let ok = ref true in
    for k = 0 to l - 1 do
      if word wa k land lnot (word wb k) <> 0 then ok := false
    done;
    !ok
  end

let equal a b =
  if is_small a && is_small b then smv a = smv b
  else begin
    let wa = words a and wb = words b in
    let l = max (Array.length wa) (Array.length wb) in
    let ok = ref true in
    for k = 0 to l - 1 do
      if word wa k <> word wb k then ok := false
    done;
    !ok
  end

let strict_subset a b = subset a b && not (equal a b)

let disjoint a b =
  if is_small a && is_small b then smv a land smv b = 0
  else begin
    let wa = words a and wb = words b in
    let l = max (Array.length wa) (Array.length wb) in
    let ok = ref true in
    for k = 0 to l - 1 do
      if word wa k land word wb k <> 0 then ok := false
    done;
    !ok
  end

let intersects a b = not (disjoint a b)

(* numeric order of the value, regardless of representation *)
let compare a b =
  if is_small a && is_small b then Int.compare (smv a) (smv b)
  else begin
    let wa = words a and wb = words b in
    let l = max (Array.length wa) (Array.length wb) in
    let c = ref 0 in
    let k = ref (l - 1) in
    while !c = 0 && !k >= 0 do
      c := Int.compare (word wa !k) (word wb !k);
      decr k
    done;
    !c
  end

(* SWAR popcount on the 62 usable bits of one word. *)
let popcount s =
  let x = s - ((s lsr 1) land 0x5555555555555555) in
  let x = (x land 0x3333333333333333) + ((x lsr 2) land 0x3333333333333333) in
  let x = (x + (x lsr 4)) land 0x0F0F0F0F0F0F0F0F in
  (x * 0x0101010101010101) lsr 56

let cardinal s =
  if is_small s then popcount (smv s)
  else Array.fold_left (fun acc w -> acc + popcount w) 0 (wdv s)

let is_singleton s =
  if is_small s then begin
    let s = smv s in
    s <> 0 && s land (s - 1) = 0
  end
  else begin
    let a = wdv s in
    (* 0 = none seen, 1 = exactly one bit, 2 = more *)
    let seen = ref 0 in
    Array.iter
      (fun w ->
        if w <> 0 then
          if !seen > 0 || w land (w - 1) <> 0 then seen := 2 else seen := 1)
      a;
    !seen = 1
  end

(* Number of trailing zeros via de-Bruijn-free loop; sets are small so
   a simple shift loop would do, but binary search is branch-cheap. *)
let ntz s =
  let s = s land (-s) in
  let n = ref 0 in
  let s = ref s in
  if !s land 0xFFFFFFFF = 0 then begin n := !n + 32; s := !s lsr 32 end;
  if !s land 0xFFFF = 0 then begin n := !n + 16; s := !s lsr 16 end;
  if !s land 0xFF = 0 then begin n := !n + 8; s := !s lsr 8 end;
  if !s land 0xF = 0 then begin n := !n + 4; s := !s lsr 4 end;
  if !s land 0x3 = 0 then begin n := !n + 2; s := !s lsr 2 end;
  if !s land 0x1 = 0 then n := !n + 1;
  !n

(* position of the highest set bit of a nonzero word *)
let msb s =
  let v = ref 0 in
  let s = ref s in
  if !s land (0x3FFFFFFF lsl 32) <> 0 then begin v := !v + 32; s := !s lsr 32 end;
  if !s land (0xFFFF lsl 16) <> 0 then begin v := !v + 16; s := !s lsr 16 end;
  if !s land (0xFF lsl 8) <> 0 then begin v := !v + 8; s := !s lsr 8 end;
  if !s land (0xF lsl 4) <> 0 then begin v := !v + 4; s := !s lsr 4 end;
  if !s land (0x3 lsl 2) <> 0 then begin v := !v + 2; s := !s lsr 2 end;
  if !s land 0x2 <> 0 then v := !v + 1;
  !v

let min_elt s =
  if is_small s then begin
    let x = smv s in
    if x = 0 then raise Not_found else ntz x
  end
  else begin
    let a = wdv s in
    let n = Array.length a in
    let rec go k =
      if k = n then raise Not_found
      else if a.(k) <> 0 then (bits_per_word * k) + ntz a.(k)
      else go (k + 1)
    in
    go 0
  end

let min_elt_opt s = match min_elt s with v -> Some v | exception Not_found -> None

let max_elt s =
  if is_small s then begin
    let x = smv s in
    if x = 0 then raise Not_found else msb x
  end
  else begin
    let a = wdv s in
    let rec go k =
      if k < 0 then raise Not_found
      else if a.(k) <> 0 then (bits_per_word * k) + msb a.(k)
      else go (k - 1)
    in
    go (Array.length a - 1)
  end

let min_set s =
  if is_small s then sm (smv s land (-smv s))
  else begin
    let a = wdv s in
    let r = Array.make (Array.length a) 0 in
    (try
       for k = 0 to Array.length a - 1 do
         if a.(k) <> 0 then begin
           r.(k) <- a.(k) land (-a.(k));
           raise Exit
         end
       done
     with Exit -> ());
    wd r
  end

let without_min s =
  if is_small s then sm (smv s land (smv s - 1))
  else begin
    let r = Array.copy (wdv s) in
    (try
       for k = 0 to Array.length r - 1 do
         if r.(k) <> 0 then begin
           r.(k) <- r.(k) land (r.(k) - 1);
           raise Exit
         end
       done
     with Exit -> ());
    wd r
  end

let full n =
  if n < 0 || n > max_nodes then
    invalid_arg (Printf.sprintf "Node_set.full: %d out of range [0,%d]" n max_nodes);
  if n <= bits_per_word && not !force_wide_flag then
    sm (if n = 0 then 0
        else if n = bits_per_word then word_mask
        else (1 lsl n) - 1)
  else begin
    let len = max 1 ((n + bits_per_word - 1) / bits_per_word) in
    let a = Array.make len 0 in
    for k = 0 to len - 1 do
      let cnt = min bits_per_word (n - (k * bits_per_word)) in
      if cnt > 0 then
        a.(k) <- (if cnt = bits_per_word then word_mask else (1 lsl cnt) - 1)
    done;
    wd a
  end

let range lo hi =
  if lo > hi then empty
  else begin
    check_node lo;
    check_node hi;
    if hi < bits_per_word && not !force_wide_flag then
      sm (((1 lsl (hi - lo + 1)) - 1) lsl lo)
    else begin
      let a = Array.make (word_of hi + 1) 0 in
      for v = lo to hi do
        let k = word_of v in
        a.(k) <- a.(k) lor (1 lsl bit_of v)
      done;
      wd a
    end
  end

let below v =
  check_node v;
  full v

let upto v =
  check_node v;
  full (v + 1)

let of_list vs = List.fold_left (fun s v -> add v s) empty vs

let iter f s =
  if is_small s then begin
    let s = ref (smv s) in
    while !s <> 0 do
      let v = ntz !s in
      f v;
      s := !s land (!s - 1)
    done
  end
  else begin
    let a = wdv s in
    for k = 0 to Array.length a - 1 do
      let base = bits_per_word * k in
      let w = ref a.(k) in
      while !w <> 0 do
        f (base + ntz !w);
        w := !w land (!w - 1)
      done
    done
  end

let iter_desc f s =
  if is_small s then begin
    let s = ref (smv s) in
    while !s <> 0 do
      let v = msb !s in
      f v;
      s := !s land lnot (1 lsl v)
    done
  end
  else begin
    let a = wdv s in
    for k = Array.length a - 1 downto 0 do
      let base = bits_per_word * k in
      let w = ref a.(k) in
      while !w <> 0 do
        let b = msb !w in
        f (base + b);
        w := !w land lnot (1 lsl b)
      done
    done
  end

let fold f s acc =
  let acc = ref acc in
  iter (fun v -> acc := f v !acc) s;
  !acc

(* Union of per-node table entries over the members of [s].  This is
   the inner loop of neighborhood computation (per-node simple
   neighbors, incident-edge covers), written without closures so the
   common path allocates nothing.  The moment anything wide shows up
   we bail to the generic fold — union is idempotent, so re-adding
   entries the fast loop already accumulated is harmless. *)
let union_over_array (arr : t array) s =
  if is_small s then begin
    let acc = ref 0 in
    let m = ref (smv s) in
    let wide = ref false in
    while (not !wide) && !m <> 0 do
      let e = arr.(ntz !m) in
      if is_small e then begin
        acc := !acc lor smv e;
        m := !m land (!m - 1)
      end
      else wide := true
    done;
    if not !wide then sm !acc
    else fold (fun v acc -> union arr.(v) acc) s (sm !acc)
  end
  else fold (fun v acc -> union arr.(v) acc) s empty

let to_list s = List.rev (fold (fun v l -> v :: l) s [])

let for_all p s =
  if is_small s then begin
    let ok = ref true in
    let s = ref (smv s) in
    while !ok && !s <> 0 do
      let v = ntz !s in
      if not (p v) then ok := false;
      s := !s land (!s - 1)
    done;
    !ok
  end
  else begin
    let ok = ref true in
    (try
       iter
         (fun v ->
           if not (p v) then begin
             ok := false;
             raise Exit
           end)
         s
     with Exit -> ());
    !ok
  end

let exists p s = not (for_all (fun v -> not (p v)) s)

let filter p s = fold (fun v acc -> if p v then add v acc else acc) s empty

let choose = min_elt

let to_int s =
  if is_small s then smv s
  else begin
    let a = wdv s in
    if last_nonzero a = 0 then a.(0)
    else
      invalid_arg "Node_set.to_int: set does not fit in a single word"
  end

let unsafe_of_int i = sm i

let hash s =
  if is_small s then smv s
  else begin
    let a = wdv s in
    let last = last_nonzero a in
    if last = 0 then a.(0)
    else begin
      let h = ref a.(0) in
      for k = 1 to last do
        h := ((!h * 486187739) + a.(k)) land max_int
      done;
      !h
    end
  end

let pp_named name ppf s =
  Format.fprintf ppf "{";
  let first = ref true in
  iter
    (fun v ->
      if !first then first := false else Format.fprintf ppf ",";
      Format.pp_print_string ppf (name v))
    s;
  Format.fprintf ppf "}"

let pp ppf s = pp_named (fun v -> "R" ^ string_of_int v) ppf s

let to_string s = Format.asprintf "%a" pp s

module Internal = struct
  let is_wide_repr s = not (is_small s)

  let force_wide s = if is_small s then wd [| smv s |] else s

  let force_wide_mode () = !force_wide_flag

  let with_force_wide f =
    let saved = !force_wide_flag in
    force_wide_flag := true;
    Fun.protect ~finally:(fun () -> force_wide_flag := saved) f
end
