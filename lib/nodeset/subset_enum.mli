(** Fast enumeration of the subsets of a node set.

    This is the Vance–Maier trick (SIGMOD 1996): the non-empty subsets
    of a bit mask [m] are produced by iterating
    [s' = (s' - m) land m], which walks them in increasing numeric
    order without ever touching a bit outside [m].  Every inner loop
    of DPhyp, DPsub and the brute-force csg enumerators is built on
    this primitive. *)

val iter_nonempty : Node_set.t -> (Node_set.t -> unit) -> unit
(** [iter_nonempty m f] calls [f] on every non-empty subset of [m]
    (including [m] itself), in increasing numeric order.  [f] is
    called [2^|m| - 1] times. *)

val iter_proper_nonempty : Node_set.t -> (Node_set.t -> unit) -> unit
(** Like {!iter_nonempty} but excludes [m] itself. *)

val iter_all : Node_set.t -> (Node_set.t -> unit) -> unit
(** Every subset including the empty one. *)

val fold_nonempty : Node_set.t -> ('a -> Node_set.t -> 'a) -> 'a -> 'a
(** Fold version of {!iter_nonempty}. *)

val exists_nonempty : Node_set.t -> (Node_set.t -> bool) -> bool
(** [exists_nonempty m p] is true iff some non-empty subset of [m]
    satisfies [p]; stops at the first witness. *)

val count : Node_set.t -> (Node_set.t -> bool) -> int
(** Number of non-empty subsets of [m] satisfying the predicate. *)

val to_list_nonempty : Node_set.t -> Node_set.t list
(** All non-empty subsets, increasing numeric order.  Intended for
    tests on small masks. *)
