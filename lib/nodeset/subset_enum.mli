(** Fast enumeration of the subsets of a node set.

    This is the Vance–Maier trick (SIGMOD 1996): the non-empty subsets
    of a bit mask [m] are produced by iterating
    [s' = (s' - m) land m], which walks them in increasing numeric
    order without ever touching a bit outside [m].  Every inner loop
    of DPhyp, DPsub and the brute-force csg enumerators is built on
    this primitive. *)

val iter_nonempty : Node_set.t -> (Node_set.t -> unit) -> unit
(** [iter_nonempty m f] calls [f] on every non-empty subset of [m]
    (including [m] itself), in increasing numeric order.  [f] is
    called [2^|m| - 1] times. *)

val iter_proper_nonempty : Node_set.t -> (Node_set.t -> unit) -> unit
(** Like {!iter_nonempty} but excludes [m] itself. *)

val iter_all : Node_set.t -> (Node_set.t -> unit) -> unit
(** Every subset including the empty one. *)

val fold_nonempty : Node_set.t -> ('a -> Node_set.t -> 'a) -> 'a -> 'a
(** Fold version of {!iter_nonempty}. *)

val exists_nonempty : Node_set.t -> (Node_set.t -> bool) -> bool
(** [exists_nonempty m p] is true iff some non-empty subset of [m]
    satisfies [p]; stops at the first witness. *)

val count : Node_set.t -> (Node_set.t -> bool) -> int
(** Number of non-empty subsets of [m] satisfying the predicate. *)

val to_list_nonempty : Node_set.t -> Node_set.t list
(** All non-empty subsets, increasing numeric order.  Intended for
    tests on small masks. *)

(** Rank-indexed addressing of the subset lattice of a universe [U]:
    every subset maps to a dense index in [0, 2^|U|) (bit [j] of the
    index selects the [j]-th smallest member of [U]), which is how the
    zeta/Möbius transforms of subset convolution (see [Core.Dpconv])
    lay the lattice out in flat arrays.  When [U] is the contiguous
    prefix [{0..k-1}] on the single-word path the index {e is} the raw
    bit pattern and the conversions are free; any other universe (or a
    forced-wide representation) goes through the member table, so the
    mapping is representation-independent. *)
module Lattice : sig
  type t

  val make : Node_set.t -> t
  (** Index structure for the subsets of the given universe.
      @raise Invalid_argument if the universe has
      [Node_set.small_capacity] or more members (the dense index must
      fit an [int]). *)

  val universe : t -> Node_set.t

  val bits : t -> int
  (** Number of members of the universe [k]. *)

  val size : t -> int
  (** [2^k], the number of subsets (valid indexes are [0..size-1]). *)

  val index_of : t -> Node_set.t -> int
  (** Dense index of a subset.  @raise Invalid_argument if the set is
      not a subset of the universe. *)

  val of_index : t -> int -> Node_set.t
  (** Inverse of {!index_of}.  @raise Invalid_argument if the index is
      outside [0, size). *)

  val iter_rank : t -> rank:int -> (int -> Node_set.t -> unit) -> unit
  (** [iter_rank l ~rank f] calls [f index subset] on every subset of
      the universe with exactly [rank] members, in increasing index
      order (Gosper's hack) — the layer-by-layer walk of the ranked
      transforms.  @raise Invalid_argument if [rank] is negative or
      exceeds {!bits}. *)
end
