(* Vance–Maier subset enumeration: s' = (s' - m) land m.

   Starting from s = 0, the update yields every subset of m exactly
   once in increasing numeric order and returns to 0 after the full
   subset m.  Subtraction borrows through the zero gaps of m, which is
   what makes the stride work.

   Masks that fit the single-word representation take that stride
   verbatim.  Wider masks fall back to a counter over the member list:
   with members m_0 < m_1 < ... the counter's bit j selects m_j, so
   counting 1 .. 2^k-1 still yields every non-empty subset exactly
   once in increasing numeric order — the property DP enumeration
   relies on (subsets before supersets along each chain). *)

let iter_nonempty_small m f =
  if m <> 0 then begin
    let s = ref (m land (-m)) in
    (* first non-empty subset = lowest bit *)
    let continue = ref true in
    while !continue do
      f (Node_set.unsafe_of_int !s);
      if !s = m then continue := false
      else s := (!s - m) land m
    done
  end

let iter_nonempty_wide m f =
  let members = Array.of_list (Node_set.to_list m) in
  let k = Array.length members in
  if k >= Node_set.small_capacity then
    invalid_arg
      (Printf.sprintf "Subset_enum: mask with %d members is not enumerable" k);
  for c = 1 to (1 lsl k) - 1 do
    let s = ref Node_set.empty in
    for j = 0 to k - 1 do
      if (c lsr j) land 1 = 1 then s := Node_set.add members.(j) !s
    done;
    f !s
  done

let iter_nonempty m f =
  if Node_set.fits_small m then iter_nonempty_small (Node_set.to_int m) f
  else iter_nonempty_wide m f

let iter_proper_nonempty m f =
  iter_nonempty m (fun s -> if not (Node_set.equal s m) then f s)

let iter_all m f =
  f Node_set.empty;
  iter_nonempty m f

let fold_nonempty m f acc =
  let acc = ref acc in
  iter_nonempty m (fun s -> acc := f !acc s);
  !acc

exception Found

let exists_nonempty m p =
  try
    iter_nonempty m (fun s -> if p s then raise Found);
    false
  with Found -> true

let count m p = fold_nonempty m (fun n s -> if p s then n + 1 else n) 0

let to_list_nonempty m = List.rev (fold_nonempty m (fun l s -> s :: l) [])
