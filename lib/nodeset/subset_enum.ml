(* Vance–Maier subset enumeration: s' = (s' - m) land m.

   Starting from s = 0, the update yields every subset of m exactly
   once in increasing numeric order and returns to 0 after the full
   subset m.  Subtraction borrows through the zero gaps of m, which is
   what makes the stride work. *)

let m_of s = Node_set.to_int s

let iter_nonempty m f =
  let m = m_of m in
  if m <> 0 then begin
    let s = ref (m land (-m)) in
    (* first non-empty subset = lowest bit *)
    let continue = ref true in
    while !continue do
      f (Node_set.unsafe_of_int !s);
      if !s = m then continue := false
      else s := (!s - m) land m
    done
  end

let iter_proper_nonempty m f =
  let mi = m_of m in
  iter_nonempty m (fun s -> if Node_set.to_int s <> mi then f s)

let iter_all m f =
  f Node_set.empty;
  iter_nonempty m f

let fold_nonempty m f acc =
  let acc = ref acc in
  iter_nonempty m (fun s -> acc := f !acc s);
  !acc

exception Found

let exists_nonempty m p =
  try
    iter_nonempty m (fun s -> if p s then raise Found);
    false
  with Found -> true

let count m p = fold_nonempty m (fun n s -> if p s then n + 1 else n) 0

let to_list_nonempty m = List.rev (fold_nonempty m (fun l s -> s :: l) [])
