(* Vance–Maier subset enumeration: s' = (s' - m) land m.

   Starting from s = 0, the update yields every subset of m exactly
   once in increasing numeric order and returns to 0 after the full
   subset m.  Subtraction borrows through the zero gaps of m, which is
   what makes the stride work.

   Masks that fit the single-word representation take that stride
   verbatim.  Wider masks fall back to a counter over the member list:
   with members m_0 < m_1 < ... the counter's bit j selects m_j, so
   counting 1 .. 2^k-1 still yields every non-empty subset exactly
   once in increasing numeric order — the property DP enumeration
   relies on (subsets before supersets along each chain). *)

let iter_nonempty_small m f =
  if m <> 0 then begin
    let s = ref (m land (-m)) in
    (* first non-empty subset = lowest bit *)
    let continue = ref true in
    while !continue do
      f (Node_set.unsafe_of_int !s);
      if !s = m then continue := false
      else s := (!s - m) land m
    done
  end

let iter_nonempty_wide m f =
  let members = Array.of_list (Node_set.to_list m) in
  let k = Array.length members in
  if k >= Node_set.small_capacity then
    invalid_arg
      (Printf.sprintf "Subset_enum: mask with %d members is not enumerable" k);
  for c = 1 to (1 lsl k) - 1 do
    let s = ref Node_set.empty in
    for j = 0 to k - 1 do
      if (c lsr j) land 1 = 1 then s := Node_set.add members.(j) !s
    done;
    f !s
  done

let iter_nonempty m f =
  if Node_set.fits_small m then iter_nonempty_small (Node_set.to_int m) f
  else iter_nonempty_wide m f

let iter_proper_nonempty m f =
  iter_nonempty m (fun s -> if not (Node_set.equal s m) then f s)

let iter_all m f =
  f Node_set.empty;
  iter_nonempty m f

let fold_nonempty m f acc =
  let acc = ref acc in
  iter_nonempty m (fun s -> acc := f !acc s);
  !acc

(* ---------- rank-indexed lattice addressing ----------

   The subset-convolution transforms (Core.Dpconv) want the subsets of
   a universe U as indexes into a flat array of size 2^|U|: bit j of
   the index selects the j-th smallest member of U.  When U is the
   contiguous prefix {0..k-1} on the single-word path this is exactly
   [Node_set.to_int]; any other universe goes through the member
   table.  Rank iteration (all subsets of a fixed cardinality, in
   increasing index order) is Gosper's hack on the dense indexes. *)

module Lattice = struct
  type t = {
    universe : Node_set.t;
    members : int array;  (* j-th smallest member of the universe *)
    size : int;  (* 2^|universe| *)
    contiguous : bool;  (* index = raw bit pattern *)
  }

  let make universe =
    let members = Array.of_list (Node_set.to_list universe) in
    let k = Array.length members in
    if k >= Node_set.small_capacity then
      invalid_arg
        (Printf.sprintf
           "Subset_enum.Lattice: universe with %d members is not indexable" k);
    let contiguous =
      Node_set.fits_small universe && Node_set.to_int universe = (1 lsl k) - 1
    in
    { universe; members; size = 1 lsl k; contiguous }

  let universe l = l.universe

  let bits l = Array.length l.members

  let size l = l.size

  let index_of l s =
    if not (Node_set.subset s l.universe) then
      invalid_arg "Subset_enum.Lattice.index_of: not a subset of the universe";
    if l.contiguous then Node_set.to_int s
    else begin
      let idx = ref 0 in
      for j = 0 to Array.length l.members - 1 do
        if Node_set.mem l.members.(j) s then idx := !idx lor (1 lsl j)
      done;
      !idx
    end

  let of_index l idx =
    if idx < 0 || idx >= l.size then
      invalid_arg "Subset_enum.Lattice.of_index: index out of range";
    if l.contiguous && not (Node_set.Internal.force_wide_mode ()) then
      Node_set.unsafe_of_int idx
    else begin
      let s = ref Node_set.empty in
      let rem = ref idx in
      while !rem <> 0 do
        let j =
          (* index of the lowest set bit *)
          let b = !rem land - !rem in
          let rec tz j b = if b land 1 = 1 then j else tz (j + 1) (b lsr 1) in
          tz 0 b
        in
        s := Node_set.add l.members.(j) !s;
        rem := !rem land (!rem - 1)
      done;
      !s
    end

  (* Gosper's hack: next larger integer with the same popcount. *)
  let iter_rank l ~rank f =
    let k = Array.length l.members in
    if rank < 0 || rank > k then
      invalid_arg "Subset_enum.Lattice.iter_rank: rank out of range"
    else if rank = 0 then f 0 Node_set.empty
    else begin
      let c = ref ((1 lsl rank) - 1) in
      while !c < l.size do
        f !c (of_index l !c);
        let lo = !c land - !c in
        let ripple = !c + lo in
        c := ripple lor (((!c lxor ripple) / lo) lsr 2)
      done
    end
end

exception Found

let exists_nonempty m p =
  try
    iter_nonempty m (fun s -> if p s then raise Found);
    false
  with Found -> true

let count m p = fold_nonempty m (fun n s -> if p s then n + 1 else n) 0

let to_list_nonempty m = List.rev (fold_nonempty m (fun l s -> s :: l) [])
